package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return st, resp
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, ts, "/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

const smallRun = `{"type":"run","config":{"benchmark":"libquantum","instructions":50000,"meta":{"size":"64KB"}}}`

func TestSubmitStatusResultHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, resp := postJob(t, ts, smallRun)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Key == "" || st.CacheHit {
		t.Fatalf("bad submit response: %+v", st)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	var res JobResult
	if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", &res); resp.StatusCode != 200 {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if res.Type != TypeRun || res.Run == nil || res.Suite != nil {
		t.Fatalf("bad result envelope: %+v", res)
	}
	if res.Run.Benchmark != "libquantum" || res.Run.Instructions == 0 || res.Run.MetaHitRate <= 0 {
		t.Fatalf("implausible simulation result: %+v", res.Run)
	}
}

func TestMalformedRequests400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{not json`,
		`{"type":"warp","config":{"benchmark":"fft"}}`,                      // unknown type
		`{"config":{"benchmark":"no-such-bench"}}`,                          // unknown benchmark
		`{"config":{"benchmark":"fft","org":"tdx"}}`,                        // unknown org
		`{"config":{"benchmark":"fft","meta":{"size":"64 parsecs"}}}`,       // bad size
		`{"config":{"benchmark":"fft","meta":{"size":0}}}`,                  // non-positive size
		`{"config":{"benchmark":"fft","meta":{"size":1024,"content":"x"}}}`, // bad content policy
		`{"config":{"benchmark":"fft"},"benchmarks":["fft"]}`,               // benchmarks on a run job
		`{"type":"suite","config":{},"benchmarks":["fft","no-such-bench"]}`, // bad suite list
		`{"config":{"benchmark":"fft"},"surprise":true}`,                    // unknown field
	}
	for _, body := range cases {
		if _, resp := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestJobNotFound404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp := getJSON(t, ts, "/v1/jobs/j-99999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/v1/jobs/j-99999999/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("result status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-99999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel status %d, want 404", resp.StatusCode)
	}
}

func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Big enough to still be running when the DELETE lands.
	st, _ := postJob(t, ts, `{"type":"run","config":{"benchmark":"libquantum","instructions":2000000000}}`)
	// Wait for it to leave the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts, "/v1/jobs/"+st.ID, &cur)
		if cur.State == jobs.StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
	// The result endpoint reports the cancellation, not a result.
	if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result status %d, want 409", resp.StatusCode)
	}
}

func TestResultBeforeDone409(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, `{"type":"run","config":{"benchmark":"libquantum","instructions":2000000000}}`)
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		resp, _ := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
	}()
	if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409 while running", resp.StatusCode)
	}
}

// The acceptance-criterion test: a second identical POST must be
// served from the cache — hit counter incremented, job born done —
// without re-running the simulator.
func TestIdenticalPostServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	first, resp := postJob(t, ts, smallRun)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first post: status %d", resp.StatusCode)
	}
	waitDone(t, ts, first.ID)
	before := s.CacheStats()

	t0 := time.Now()
	second, resp := postJob(t, ts, smallRun)
	latency := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second post: status %d, want 200 (cache hit)", resp.StatusCode)
	}
	if !second.CacheHit {
		t.Fatal("second identical POST not marked cache_hit")
	}
	if second.State != jobs.StateDone {
		t.Fatalf("cache-hit job state %s, want done at birth", second.State)
	}
	if second.Key != first.Key {
		t.Fatalf("content address changed between identical posts: %s vs %s", second.Key, first.Key)
	}
	after := s.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("cache hits %d → %d, want +1", before.Hits, after.Hits)
	}
	// A 50k-instruction simulation takes tens of milliseconds; a
	// cache hit is a map lookup. The generous bound still separates
	// them by an order of magnitude.
	if latency > 2*time.Second {
		t.Fatalf("cache-hit submit took %v; it must not re-simulate", latency)
	}
	// And its result is immediately fetchable and identical.
	var res JobResult
	getJSON(t, ts, "/v1/jobs/"+second.ID+"/result", &res)
	if res.Run == nil || res.Run.Benchmark != "libquantum" {
		t.Fatalf("cached result: %+v", res)
	}

	// A differently-spelled but canonically identical config also
	// hits: explicit defaults hash the same as omitted ones.
	respelled := `{"type":"run","config":{"benchmark":"libquantum","instructions":50000,"seed":1,"meta":{"size":65536,"ways":8}}}`
	third, _ := postJob(t, ts, respelled)
	if !third.CacheHit {
		t.Fatal("canonically identical config missed the cache")
	}

	// no_cache forces a re-run.
	fourth, resp := postJob(t, ts, `{"type":"run","no_cache":true,"config":{"benchmark":"libquantum","instructions":50000,"meta":{"size":"64KB"}}}`)
	if resp.StatusCode != http.StatusAccepted || fourth.CacheHit {
		t.Fatalf("no_cache must bypass the lookup: %d %+v", resp.StatusCode, fourth)
	}
	waitDone(t, ts, fourth.ID)
}

func TestSuiteEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := `{"type":"suite","config":{"instructions":30000},"benchmarks":["libquantum","fft"],"parallelism":2}`
	st, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	var res JobResult
	getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", &res)
	if res.Type != TypeSuite || res.Suite == nil {
		t.Fatalf("bad suite envelope: %+v", res)
	}
	if len(res.Suite.PerBench) != 2 || res.Suite.GeomeanIPC <= 0 {
		t.Fatalf("bad suite result: %+v", res.Suite)
	}
	// Second identical suite POST is a cache hit.
	again, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusOK || !again.CacheHit {
		t.Fatalf("suite re-post: %d %+v", resp.StatusCode, again)
	}
	if s.CacheStats().Hits == 0 {
		t.Fatal("suite cache hit not counted")
	}
}

func TestListEndpointsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var benches map[string][]string
	getJSON(t, ts, "/v1/benchmarks", &benches)
	if len(benches["benchmarks"]) == 0 || len(benches["memory_intensive"]) == 0 {
		t.Fatalf("benchmarks: %+v", benches)
	}
	var exps map[string][]string
	getJSON(t, ts, "/v1/experiments", &exps)
	if len(exps["experiments"]) < 15 {
		t.Fatalf("experiments: %+v", exps)
	}

	st, _ := postJob(t, ts, smallRun)
	waitDone(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"mapsd_jobs_completed_total 1",
		"mapsd_cache_misses_total 1",
		"mapsd_cache_entries 1",
		"mapsd_simulated_instructions_total",
		"mapsd_simulated_instructions_per_second",
		"mapsd_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Throughput must be non-zero after a completed job.
	var ips float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "mapsd_simulated_instructions_per_second ") {
			fmt.Sscanf(line, "mapsd_simulated_instructions_per_second %g", &ips)
		}
	}
	if ips <= 0 {
		t.Errorf("instructions/sec %v, want > 0", ips)
	}
}

func TestQueueFullShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	long := `{"type":"run","config":{"benchmark":"libquantum","instructions":2000000000}}`
	first, _ := postJob(t, ts, long)
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
		resp, _ := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
	}()
	// Wait until the first job occupies the worker, then fill the
	// queue slot and overflow it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobStatus
		getJSON(t, ts, "/v1/jobs/"+first.ID, &cur)
		if cur.State == jobs.StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	second, resp := postJob(t, ts, `{"type":"run","no_cache":true,"config":{"benchmark":"fft","instructions":2000000000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second: %d", resp.StatusCode)
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
		r, _ := http.DefaultClient.Do(req)
		if r != nil {
			r.Body.Close()
		}
	}()
	// Worker busy, queue slot full: the third submission is shed with
	// 429 + Retry-After, and the shed counter accounts it.
	_, resp = postJob(t, ts, `{"type":"run","no_cache":true,"config":{"benchmark":"canneal","instructions":2000000000}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.ShedCount(); got != 1 {
		t.Errorf("shed count %d, want 1", got)
	}
	// Saturated queue flips readiness (while /healthz stays 200).
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while saturated: %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while saturated: %d, want 200", resp.StatusCode)
	}
}

// The readiness probe: ready when idle, 503 once draining begins,
// while liveness stays green throughout.
func TestReadyzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz idle: %d, want 200", resp.StatusCode)
	}
	s.MarkDraining()
	resp := getJSON(t, ts, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz draining: %d, want 200", resp.StatusCode)
	}
}

// Submissions after the pool starts draining surface as 503.
func TestSubmitWhileDraining503(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, resp := postJob(t, ts, smallRun)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on drained pool: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining submit missing Retry-After")
	}
}

// The satellite table: every server error path answers with the right
// status and a JSON error body, including the body-size cap and the
// cancel edge cases.
func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 4096})

	t.Run("malformed-json", func(t *testing.T) {
		for _, body := range []string{`{not json`, `[]`, `"run"`} {
			_, resp := postJob(t, ts, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("body %q: %d, want 400", body, resp.StatusCode)
			}
		}
	})

	t.Run("oversized-body-413", func(t *testing.T) {
		huge := `{"config":{"benchmark":"` + strings.Repeat("x", 8192) + `"}}`
		_, resp := postJob(t, ts, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body: %d, want 413", resp.StatusCode)
		}
	})

	t.Run("cancel-unknown-job-404", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j-00424242", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("cancel unknown: %d, want 404", resp.StatusCode)
		}
	})

	t.Run("double-cancel-idempotent", func(t *testing.T) {
		st, _ := postJob(t, ts, `{"type":"run","config":{"benchmark":"libquantum","instructions":2000000000}}`)
		for i := 0; i < 2; i++ {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("cancel #%d: %d, want 200 (cancel is idempotent)", i+1, resp.StatusCode)
			}
		}
		final := waitDone(t, ts, st.ID)
		if final.State != jobs.StateCanceled {
			t.Errorf("state %s after double cancel, want canceled", final.State)
		}
	})
}

// TestServerDefaultShards: a daemon started with -shards applies the
// default to submitted runs that don't pick their own sharding, and
// the /metrics page exports the mapsd_run_shards gauge.
func TestServerDefaultShards(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Shards: 2})
	st, _ := postJob(t, ts, smallRun)
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	var res JobResult
	getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", &res)
	if res.Run == nil || res.Run.Sharding == nil {
		t.Fatalf("run did not shard under server default: %+v", res.Run)
	}
	if got := res.Run.Sharding.Shards; got != 2 {
		t.Fatalf("run used %d shards, want the server default 2", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "mapsd_run_shards ") {
		t.Fatal("metrics page missing mapsd_run_shards gauge")
	}
}
