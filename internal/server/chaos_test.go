package server

// Chaos tests: arm the fault-injection points (internal/faults) under
// a live server and assert the system's invariants hold — workers
// survive every injected panic, every accepted job reaches a terminal
// state, and the metrics account for every fault fired. Rate-1.0
// phases check exact counts; the mixed fractional-rate phase checks
// the structural invariants that must hold regardless of scheduling.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/jobs"
)

// chaosServer builds a server with fast retries and registers cleanup
// that disarms and zeroes every fault point, so chaos state can never
// leak into other tests.
func chaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	faults.Reset()
	t.Cleanup(faults.Reset)
	return newTestServer(t, cfg)
}

// submitDistinct posts n distinct uncacheable run jobs (the seed field
// varies, so no two share a canonical hash) and returns their IDs.
func submitDistinct(t *testing.T, ts *httptest.Server, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(
			`{"type":"run","no_cache":true,"config":{"benchmark":"libquantum","instructions":50000,"seed":%d}}`, i+1)
		st, resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	return ids
}

// healthyJobSucceeds proves the workers survived a chaos phase: with
// everything disarmed, a fresh job must complete normally.
func healthyJobSucceeds(t *testing.T, ts *httptest.Server) {
	t.Helper()
	faults.DisarmAll()
	st, resp := postJob(t, ts, `{"type":"run","no_cache":true,"config":{"benchmark":"libquantum","instructions":50000,"seed":424242}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy submit after chaos: %d", resp.StatusCode)
	}
	if final := waitDone(t, ts, st.ID); final.State != jobs.StateDone {
		t.Fatalf("healthy job after chaos: %s (%s), want done — workers did not survive", final.State, final.Error)
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// Every job function panics; every panic must be isolated, counted,
// and turned into a failed job — and the workers must all survive.
func TestChaosPanicStorm(t *testing.T) {
	s, ts := chaosServer(t, Config{Workers: 2, QueueDepth: 32})
	faults.Seed(42)
	if err := faults.P("jobs.run").Arm(faults.Injection{Mode: faults.ModePanic}); err != nil {
		t.Fatal(err)
	}

	const n = 5
	for _, id := range submitDistinct(t, ts, n) {
		final := waitDone(t, ts, id)
		if final.State != jobs.StateFailed {
			t.Errorf("job %s: %s, want failed", id, final.State)
		}
		if !strings.Contains(final.Error, "panic") {
			t.Errorf("job %s error %q, want panic marker", id, final.Error)
		}
	}

	stats := s.PoolStats()
	if stats.Panics != n {
		t.Errorf("panics %d, want %d", stats.Panics, n)
	}
	if stats.Failed != n {
		t.Errorf("failed %d, want %d", stats.Failed, n)
	}
	if stats.Retries != 0 {
		t.Errorf("retries %d, want 0 (panics are not retried)", stats.Retries)
	}
	if fired := faults.P("jobs.run").Fired(); fired != n {
		t.Errorf("fired %d, want %d", fired, n)
	}
	healthyJobSucceeds(t, ts)
}

// Every job function returns a transient error; the pool must burn its
// whole retry budget on each job, and the fired/retry/failure counts
// must reconcile exactly.
func TestChaosTransientErrExhaustion(t *testing.T) {
	const n, retries = 4, 2
	s, ts := chaosServer(t, Config{
		Workers: 2, QueueDepth: 32,
		JobRetries: retries, JobRetryBase: time.Millisecond,
	})
	faults.Seed(7)
	if err := faults.P("jobs.run").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}

	for _, id := range submitDistinct(t, ts, n) {
		final := waitDone(t, ts, id)
		if final.State != jobs.StateFailed {
			t.Errorf("job %s: %s, want failed", id, final.State)
		}
		if !strings.Contains(final.Error, "injected") {
			t.Errorf("job %s error %q, want injected marker", id, final.Error)
		}
	}

	stats := s.PoolStats()
	attempts := uint64(n * (retries + 1))
	if fired := faults.P("jobs.run").Fired(); fired != attempts {
		t.Errorf("fired %d, want %d (every attempt injects)", fired, attempts)
	}
	if want := uint64(n * retries); stats.Retries != want {
		t.Errorf("retries %d, want %d", stats.Retries, want)
	}
	if stats.Panics != 0 {
		t.Errorf("panics %d, want 0", stats.Panics)
	}

	// The metrics endpoint must account for every fault and retry.
	text := metricsText(t, ts)
	for _, want := range []string{
		fmt.Sprintf(`mapsd_faults_injected_total{point="jobs.run"} %d`, attempts),
		fmt.Sprintf("mapsd_jobs_retries_total %d", n*retries),
		fmt.Sprintf("mapsd_jobs_failed_total %d", n),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	healthyJobSucceeds(t, ts)
}

// Cache writes fail; jobs must still complete (the service degrades to
// re-simulating instead of erroring) and the dropped writes are counted.
func TestChaosCacheWriteOutage(t *testing.T) {
	s, ts := chaosServer(t, Config{Workers: 1})
	if err := faults.P("results.put").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}

	const body = `{"type":"run","config":{"benchmark":"fft","instructions":50000}}`
	st, _ := postJob(t, ts, body)
	if final := waitDone(t, ts, st.ID); final.State != jobs.StateDone {
		t.Fatalf("job with cache outage: %s, want done", final.State)
	}
	if got := s.CacheStats().DroppedPuts; got == 0 {
		t.Error("dropped puts 0, want > 0")
	}
	// The write was dropped, so an identical resubmission re-simulates
	// (no cache hit) — and still succeeds.
	st2, _ := postJob(t, ts, body)
	if st2.CacheHit {
		t.Error("cache hit after dropped put")
	}
	if final := waitDone(t, ts, st2.ID); final.State != jobs.StateDone {
		t.Errorf("resubmission: %s, want done", final.State)
	}
	if !strings.Contains(metricsText(t, ts), "mapsd_cache_dropped_puts_total") {
		t.Error("metrics missing mapsd_cache_dropped_puts_total")
	}
}

// A fault deep in the simulation loop (checked at cancellation
// checkpoints) surfaces as a failed job without touching the worker.
func TestChaosSimStepFault(t *testing.T) {
	_, ts := chaosServer(t, Config{Workers: 1, JobRetries: -1})
	if err := faults.P("sim.step").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}

	// Instructions must exceed the simulator's checkpoint interval
	// (64Ki) or the fault point is never reached.
	st, _ := postJob(t, ts, `{"type":"run","no_cache":true,"config":{"benchmark":"libquantum","instructions":200000}}`)
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateFailed {
		t.Fatalf("sim fault job: %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "injected") {
		t.Errorf("error %q, want injected marker", final.Error)
	}
	if fired := faults.P("sim.step").Fired(); fired != 1 {
		t.Errorf("sim.step fired %d, want 1 (retries disabled)", fired)
	}
	healthyJobSucceeds(t, ts)
}

// Submit handler latency injection: delays slow the request but never
// fail it.
func TestChaosSubmitDelay(t *testing.T) {
	_, ts := chaosServer(t, Config{Workers: 1})
	if err := faults.P("server.submit").Arm(faults.Injection{
		Mode: faults.ModeDelay, Delay: 10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st, resp := postJob(t, ts, smallRun)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delayed submit: %d", resp.StatusCode)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("submit took %v, want >= 10ms (delay injected)", d)
	}
	if final := waitDone(t, ts, st.ID); final.State != jobs.StateDone {
		t.Errorf("delayed job: %s, want done", final.State)
	}
}

// The everything-at-once phase: fractional error rates on the job
// path and the cache plus latency on submit, many jobs in flight.
// Exact per-job outcomes depend on scheduling, but the structural
// invariants cannot: every accepted job terminal, no worker death,
// and the books balance (every injected jobs.run error is either
// retried or ends a job).
func TestChaosMixedInvariants(t *testing.T) {
	const n, retries = 24, 2
	s, ts := chaosServer(t, Config{
		Workers: 4, QueueDepth: 64,
		JobRetries: retries, JobRetryBase: time.Millisecond,
	})
	faults.Seed(123)
	if err := faults.ArmSpec("jobs.run:err:0.3,results.put:err:0.5,server.submit:delay=1ms:0.2"); err != nil {
		t.Fatal(err)
	}

	ids := submitDistinct(t, ts, n)
	var done, failed int
	for _, id := range ids {
		final := waitDone(t, ts, id)
		switch final.State {
		case jobs.StateDone:
			done++
		case jobs.StateFailed:
			failed++
			if !strings.Contains(final.Error, "injected") {
				t.Errorf("job %s failed with %q, want injected error", id, final.Error)
			}
		default:
			t.Errorf("job %s not terminal-done/failed: %s", id, final.State)
		}
	}
	if done+failed != n {
		t.Fatalf("done %d + failed %d != %d submitted", done, failed, n)
	}

	stats := s.PoolStats()
	if stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("pool not quiescent: %d queued, %d running", stats.Queued, stats.Running)
	}
	if stats.Submitted != n {
		t.Errorf("submitted %d, want %d", stats.Submitted, n)
	}
	if stats.Failed != uint64(failed) {
		t.Errorf("pool failed %d, observed %d", stats.Failed, failed)
	}
	// Every injected jobs.run error was either retried (budget left)
	// or terminal (budget exhausted) — and nothing else fails jobs.
	if fired := faults.P("jobs.run").Fired(); fired != stats.Retries+stats.Failed {
		t.Errorf("jobs.run fired %d != retries %d + failed %d",
			fired, stats.Retries, stats.Failed)
	}
	if max := uint64(n * retries); stats.Retries > max {
		t.Errorf("retries %d exceed budget %d", stats.Retries, max)
	}

	// Metrics must reconcile with the authoritative counters.
	text := metricsText(t, ts)
	for point, count := range faults.Snapshot() {
		want := fmt.Sprintf(`mapsd_faults_injected_total{point=%q} %d`, point, count)
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	healthyJobSucceeds(t, ts)
}
