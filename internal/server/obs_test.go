package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/obs"
)

// lockedBuf serializes concurrent handler writes to one buffer.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

func getProgress(t *testing.T, ts *httptest.Server, id string) (JobProgress, int) {
	t.Helper()
	var p JobProgress
	resp := getJSON(t, ts, "/v1/jobs/"+id+"/progress", &p)
	return p, resp.StatusCode
}

// Mid-run, the progress endpoint must report instruction counts that
// only ever grow, and a total matching warmup+instructions.
func TestProgressEndpointMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Big enough to still be running across several polls.
	st, resp := postJob(t, ts, `{"type":"run","config":{"benchmark":"libquantum","instructions":20000000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	const wantTotal = 20000000 + 2000000 // instructions + default 10% warmup
	var last uint64
	var grew int
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && grew < 3 {
		p, code := getProgress(t, ts, st.ID)
		if code != http.StatusOK {
			t.Fatalf("progress status %d", code)
		}
		if p.InstructionsDone < last {
			t.Fatalf("progress regressed: %d after %d", p.InstructionsDone, last)
		}
		if p.InstructionsDone > last && last > 0 {
			grew++
		}
		if p.InstructionsTotal != 0 && p.InstructionsTotal != wantTotal {
			t.Fatalf("total %d, want %d", p.InstructionsTotal, wantTotal)
		}
		if p.State == jobs.StateDone {
			break
		}
		last = p.InstructionsDone
		time.Sleep(2 * time.Millisecond)
	}
	if grew == 0 {
		t.Fatal("never observed progress growing mid-run")
	}

	// Cancel; progress must survive and stay monotone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitDone(t, ts, st.ID)
	if p, _ := getProgress(t, ts, st.ID); p.InstructionsDone < last {
		t.Errorf("post-cancel progress regressed: %d < %d", p.InstructionsDone, last)
	}
}

func TestProgressEndpointDoneAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, smallRun)
	waitDone(t, ts, st.ID)
	p, code := getProgress(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("progress status %d", code)
	}
	if p.Fraction != 1 || p.State != jobs.StateDone {
		t.Errorf("finished job progress: %+v", p)
	}
	if p.InstructionsDone < 50000 {
		t.Errorf("done instructions %d, want ≥ 50000", p.InstructionsDone)
	}

	// Resubmit: cache hit, born done, fraction 1 without ever ticking.
	st2, resp := postJob(t, ts, smallRun)
	if resp.StatusCode != http.StatusOK || !st2.CacheHit {
		t.Fatalf("expected cache hit, got %d %+v", resp.StatusCode, st2)
	}
	p2, _ := getProgress(t, ts, st2.ID)
	if !p2.CacheHit || p2.Fraction != 1 || p2.InstructionsDone != 0 {
		t.Errorf("cache-hit progress: %+v", p2)
	}

	if _, code := getProgress(t, ts, "j-99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job progress status %d, want 404", code)
	}
}

// The middleware must log one event per request with method, path,
// status, and duration attrs, and scrapes only at debug level.
func TestLogMiddlewareAttrs(t *testing.T) {
	var buf lockedBuf
	logger, err := obs.NewLogger(&buf, obs.FormatJSON, false)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	getJSON(t, ts, "/v1/benchmarks", nil)
	getJSON(t, ts, "/v1/jobs/j-00000042", nil) // 404
	getJSON(t, ts, "/healthz", nil)            // logged only at debug

	type line struct {
		Msg      string  `json:"msg"`
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration"`
	}
	var got []line
	for _, raw := range buf.Lines() {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if l.Msg == "http request" {
			got = append(got, l)
		}
	}
	want := map[string]int{"/v1/benchmarks": 200, "/v1/jobs/j-00000042": 404}
	for _, l := range got {
		if l.Path == "/healthz" {
			t.Errorf("healthz logged at info level: %+v", l)
		}
		if status, ok := want[l.Path]; ok {
			if l.Method != "GET" || l.Status != status || l.Duration <= 0 {
				t.Errorf("bad access log attrs: %+v", l)
			}
			delete(want, l.Path)
		}
	}
	for path := range want {
		t.Errorf("no access log line for %s", path)
	}
}

// A finished run must surface the new observability metric families.
func TestMetricsPhaseAndHTTPSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, smallRun)
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`mapsd_sim_phase_seconds_total{phase="setup"}`,
		`mapsd_sim_phase_seconds_total{phase="warmup"}`,
		`mapsd_sim_phase_seconds_total{phase="measure"}`,
		"mapsd_sim_phase_runs_total 1",
		"mapsd_inflight_instructions_done 0",
		`mapsd_http_requests_total{code="200"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Phase seconds must be non-zero once a run completed.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `mapsd_sim_phase_seconds_total{phase="measure"} `) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("measure phase seconds stayed zero: %s", line)
			}
		}
	}
}
