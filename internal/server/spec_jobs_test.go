package server

import (
	"net/http"
	"testing"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// specRunBody is a two-client declarative workload run, spelled in
// wire JSON exactly as mapsim.Client ships it.
const specRunBody = `{"type":"run","config":{
	"workload": {
		"name": "svc-mix",
		"clients": [
			{"name": "fg", "rate_fraction": 0.7, "footprint": 262144,
			 "arrival": {"process": "poisson"}},
			{"name": "bg", "rate_fraction": 0.3, "footprint": 524288,
			 "write_fraction": 0.5, "arrival": {"process": "gamma", "cv": 2.0}}
		]
	},
	"instructions": 30000,
	"meta": {"size": "64KB"}
}}`

// specRunBodyRespelled is the same workload with reordered fields,
// explicit defaults, and a byte-size string: it must dedupe against
// specRunBody through the canonical hash.
const specRunBodyRespelled = `{"type":"run","config":{
	"instructions": 30000,
	"meta": {"size": "64KB"},
	"workload": {
		"version": 1,
		"mean_gap": 4,
		"name": "svc-mix",
		"clients": [
			{"name": "fg", "rate_fraction": 0.7, "footprint": "256KB",
			 "sequential_run": 1, "arrival": {"process": "poisson"}},
			{"name": "bg", "rate_fraction": 0.3, "footprint": "512KB",
			 "write_fraction": 0.5, "arrival": {"process": "gamma", "cv": 2.0}}
		]
	}
}}`

func TestSpecRunEndToEndAndDedupe(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	st, resp := postJob(t, ts, specRunBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job: %+v", final)
	}
	var res JobResult
	if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	if res.Type != TypeRun || res.Run == nil {
		t.Fatalf("bad result envelope: %+v", res)
	}
	if res.Run.Benchmark != "svc-mix" || res.Run.Instructions == 0 {
		t.Fatalf("result: benchmark=%q instructions=%d", res.Run.Benchmark, res.Run.Instructions)
	}

	// An equivalent spelling must hit the cache, not re-simulate.
	st2, _ := postJob(t, ts, specRunBodyRespelled)
	if st2.Key != st.Key {
		t.Fatalf("respelled spec got key %s, want %s", st2.Key, st.Key)
	}
	if !st2.CacheHit {
		t.Fatalf("respelled spec missed the cache: %+v", st2)
	}
}

func TestSpecRunRejectsInvalidSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Fractions sum to 0.5: validation must fail at submit time with
	// a 4xx, not enqueue a job that dies later.
	body := `{"type":"run","config":{"workload":{
		"name": "broken",
		"clients": [{"name": "a", "rate_fraction": 0.5, "footprint": 262144}]
	},"instructions": 10000}}`
	_, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
	}
}

func TestSuiteRejectsWorkloadSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"type":"suite","config":{"workload":{
		"name": "svc-mix",
		"clients": [{"name": "a", "rate_fraction": 1, "footprint": 262144}]
	},"instructions": 10000},"benchmarks":["fft"]}`
	_, resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("suite with workload spec: status %d, want 400", resp.StatusCode)
	}
}

// specSweepBody sweeps a named benchmark and a declarative spec
// through the same axes: (fft + svc-mix) × 2 meta sizes = 4 points.
const specSweepBody = `{
	"base": {"instructions": 20000, "speculation": true},
	"axes": {
		"benchmarks": ["fft"],
		"workload_specs": [{
			"name": "svc-mix",
			"clients": [
				{"name": "fg", "rate_fraction": 0.7, "footprint": 262144,
				 "arrival": {"process": "poisson"}},
				{"name": "bg", "rate_fraction": 0.3, "footprint": 524288,
				 "write_fraction": 0.5, "arrival": {"process": "gamma", "cv": 2.0}}
			]
		}],
		"meta": {"points": ["16KB", "64KB"]}
	}
}`

func TestSpecSweepEndToEndWithDedupe(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16, CacheEntries: 64})

	st, resp := postSweep(t, ts, specSweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.Total != 4 {
		t.Fatalf("total %d, want 4 (2 workloads x 2 meta sizes)", st.Total)
	}
	st = waitSweepDone(t, ts, st.ID)
	if st.State != jobs.StateDone || st.Done != 4 || st.Deduped != 0 {
		t.Fatalf("first sweep: %+v", st)
	}

	var res sweep.Result
	if resp := getJSON(t, ts, "/v1/sweeps/"+st.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	benchmarks := map[string]int{}
	for _, p := range res.Points {
		if p.Result == nil {
			t.Fatalf("point %+v has no result", p.Point)
		}
		benchmarks[p.Point.Benchmark]++
	}
	if benchmarks["fft"] != 2 || benchmarks["svc-mix"] != 2 {
		t.Fatalf("benchmark distribution: %v", benchmarks)
	}

	// Resubmitting the identical grid must dedupe every point.
	st2, _ := postSweep(t, ts, specSweepBody)
	st2 = waitSweepDone(t, ts, st2.ID)
	if st2.State != jobs.StateDone || st2.Deduped != 4 {
		t.Fatalf("second sweep: %+v, want 4 deduped", st2)
	}
}
