package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/store"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// newStoreServer starts a server over a disk-backed store rooted at
// dir, returning an explicit shutdown func so tests can stop one
// "daemon" before starting the next against the same directory.
func newStoreServer(t *testing.T, dir string, peers []store.Peer) (*Server, *httptest.Server, func()) {
	t.Helper()
	st, err := store.Open(store.Options{
		Memory:      results.New(64),
		Dir:         dir,
		Peers:       peers,
		PeerTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, QueueDepth: 16, Store: st})
	ts := httptest.NewServer(s.Handler())
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	t.Cleanup(shutdown)
	return s, ts, shutdown
}

func getSweepResult(t *testing.T, ts *httptest.Server, id string) sweep.Result {
	t.Helper()
	var res sweep.Result
	if resp := getJSON(t, ts, "/v1/sweeps/"+id+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep result status %d", resp.StatusCode)
	}
	return res
}

// TestStoreRestartResume is the PR's acceptance test: run a sweep,
// restart mapsd against the same -store-dir (new server, fresh memory
// cache), rerun the identical sweep, and get every point from disk —
// zero re-simulations, bit-identical results.
func TestStoreRestartResume(t *testing.T) {
	dir := t.TempDir()

	// Daemon #1: simulate everything, persist, shut down cleanly.
	s1, ts1, shutdown1 := newStoreServer(t, dir, nil)
	st1, resp := postSweep(t, ts1, sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	fin1 := waitSweepDone(t, ts1, st1.ID)
	if fin1.State != jobs.StateDone || fin1.Done != fin1.Total || fin1.Deduped != 0 {
		t.Fatalf("first sweep: %+v", fin1)
	}
	res1 := getSweepResult(t, ts1, st1.ID)
	if s1.PoolStats().Submitted == 0 {
		t.Fatal("first sweep simulated nothing")
	}
	shutdown1() // drains the pool AND flushes the store's write queue

	// Daemon #2: same directory, empty memory tier, empty pool.
	s2, ts2, _ := newStoreServer(t, dir, nil)
	if ss := s2.StoreStats(); ss.DiskEntries == 0 {
		t.Fatalf("restart found an empty disk tier: %+v", ss)
	}
	st2, _ := postSweep(t, ts2, sweepBody)
	fin2 := waitSweepDone(t, ts2, st2.ID)
	if fin2.State != jobs.StateDone {
		t.Fatalf("second sweep: %+v", fin2)
	}
	if fin2.Deduped != fin2.Total {
		t.Fatalf("resumed sweep deduped %d of %d points, want all", fin2.Deduped, fin2.Total)
	}
	if got := s2.PoolStats().Submitted; got != 0 {
		t.Fatalf("resumed sweep submitted %d pool jobs, want 0 (zero re-simulations)", got)
	}
	if ss := s2.StoreStats(); ss.DiskHits == 0 {
		t.Fatalf("resumed sweep did not read the disk tier: %+v", ss)
	}

	// Bit-identical per-point results: the disk round trip (JSON with
	// exact float64 shortest-representation) must not perturb a single
	// field.
	res2 := getSweepResult(t, ts2, st2.ID)
	if len(res2.Points) != len(res1.Points) {
		t.Fatalf("point count %d vs %d", len(res2.Points), len(res1.Points))
	}
	for i := range res1.Points {
		a, err := json.Marshal(res1.Points[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res2.Points[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("point %d result changed across restart:\nfirst  %s\nsecond %s", i, a, b)
		}
	}
}

// httpPeer builds a store.Peer fetching over the real /v1/store/{key}
// endpoint of another test server — the same wire path cmd/mapsd's
// -peers flag configures (there via the retrying client).
func httpPeer(ts *httptest.Server) store.Peer {
	return store.Peer{
		Name: ts.URL,
		Fetch: func(ctx context.Context, key results.Key) ([]byte, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/store/"+string(key), nil)
			if err != nil {
				return nil, err
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
			}
			return io.ReadAll(resp.Body)
		},
	}
}

// TestStorePeerFill proves the fleet path: daemon B, which never
// simulated anything, answers a job as a cache hit by fetching the
// envelope from daemon A's store.
func TestStorePeerFill(t *testing.T) {
	sA, tsA, _ := newStoreServer(t, t.TempDir(), nil)
	stA, _ := postJob(t, tsA, smallRun)
	if fin := waitDone(t, tsA, stA.ID); fin.State != jobs.StateDone {
		t.Fatalf("job on A: %+v", fin)
	}
	var resA JobResult
	getJSON(t, tsA, "/v1/jobs/"+stA.ID+"/result", &resA)

	sB, tsB, _ := newStoreServer(t, t.TempDir(), []store.Peer{httpPeer(tsA)})
	stB, resp := postJob(t, tsB, smallRun)
	if resp.StatusCode != http.StatusOK || !stB.CacheHit {
		t.Fatalf("peer-filled submit: status %d, %+v", resp.StatusCode, stB)
	}
	if ss := sB.StoreStats(); ss.PeerFills != 1 || ss.PeerErrors != 0 {
		t.Fatalf("B store stats: %+v", ss)
	}
	// CacheHit means the job was born done (pool.Complete) — nothing
	// was queued, so nothing simulated.
	if ps := sB.PoolStats(); ps.Queued != 0 || ps.Running != 0 {
		t.Fatalf("B pool has work: %+v", ps)
	}
	if ss := sB.StoreStats(); ss.Misses != 0 {
		t.Fatalf("B missed %d lookups, want pure peer fill: %+v", ss.Misses, ss)
	}
	var resB JobResult
	getJSON(t, tsB, "/v1/jobs/"+stB.ID+"/result", &resB)
	a, _ := json.Marshal(resA.Run)
	b, _ := json.Marshal(resB.Run)
	if string(a) != string(b) {
		t.Fatalf("peer-filled result differs:\nA %s\nB %s", a, b)
	}
	if sA.StoreStats().PeerFills != 0 {
		t.Fatal("serving a peer counted as a fill on A")
	}
}

// TestStoreEndpoint pins the peer-fill protocol's supply side: 400 on
// hostile keys, 404 on unknown ones, a decodable envelope otherwise.
func TestStoreEndpoint(t *testing.T) {
	_, ts, _ := newStoreServer(t, t.TempDir(), nil)
	st, _ := postJob(t, ts, smallRun)
	waitDone(t, ts, st.ID)

	for _, bad := range []string{"abc", "..%2F..%2Fetc%2Fpasswd", st.Key + "0"} {
		if resp := getJSON(t, ts, "/v1/store/"+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	unknown := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if resp := getJSON(t, ts, "/v1/store/"+unknown, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/store/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known key: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	env, err := store.Decode(raw)
	if err != nil {
		t.Fatalf("served envelope does not decode: %v", err)
	}
	if env.Key != st.Key {
		t.Fatalf("envelope key %s, want %s", env.Key, st.Key)
	}
	if _, err := env.Value(); err != nil {
		t.Fatalf("envelope payload does not decode: %v", err)
	}
}

// TestStoreChaosDegradesGracefully runs the disk-full and
// peer-timeout drills through the whole HTTP path: armed store
// faults and a hung peer cost persistence or latency, never a failed
// job or a wrong result.
func TestStoreChaosDegradesGracefully(t *testing.T) {
	defer faults.Reset()
	if err := faults.ArmSpec("store.put:err"); err != nil {
		t.Fatal(err)
	}
	hungPeer := store.Peer{
		Name: "hung",
		Fetch: func(ctx context.Context, _ results.Key) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	st, err := store.Open(store.Options{
		Memory:      results.New(64),
		Dir:         t.TempDir(),
		Peers:       []store.Peer{hungPeer},
		PeerTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, QueueDepth: 16, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// The sweep waits out the hung peer per unique point (bounded by
	// PeerTimeout), every disk write is dropped — and it still
	// completes with correct results.
	sw, resp := postSweep(t, ts, sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit under chaos: %d", resp.StatusCode)
	}
	fin := waitSweepDone(t, ts, sw.ID)
	if fin.State != jobs.StateDone || fin.Done != fin.Total {
		t.Fatalf("sweep under chaos: %+v", fin)
	}
	ss := s.StoreStats()
	if ss.DroppedDiskPuts == 0 || ss.DiskPuts != 0 || ss.DiskEntries != 0 {
		t.Fatalf("disk-full drill leaked writes to disk: %+v", ss)
	}
	if ss.PeerErrors == 0 {
		t.Fatalf("hung peer never timed out: %+v", ss)
	}
	// Identical resubmission still dedupes from the memory tier.
	sw2, _ := postSweep(t, ts, sweepBody)
	fin2 := waitSweepDone(t, ts, sw2.ID)
	if fin2.State != jobs.StateDone || fin2.Deduped != fin2.Total {
		t.Fatalf("memory tier lost results under chaos: %+v", fin2)
	}
}
