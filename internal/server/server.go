// Package server is mapsd's HTTP layer: a JSON API over the job pool
// (internal/jobs) and the content-addressed result cache
// (internal/results).
//
//	POST   /v1/jobs              submit a run or suite job
//	GET    /v1/jobs/{id}          poll status
//	GET    /v1/jobs/{id}/result   fetch the finished result
//	GET    /v1/jobs/{id}/progress instructions retired mid-run
//	DELETE /v1/jobs/{id}          cancel
//	POST   /v1/sweeps             submit a parameter sweep (config grid)
//	GET    /v1/sweeps/{id}        sweep progress (?watch=1 streams NDJSON)
//	GET    /v1/sweeps/{id}/result fetch the finished sweep.Result
//	DELETE /v1/sweeps/{id}        cancel a sweep
//	GET    /v1/benchmarks         list workloads
//	GET    /v1/experiments        list experiment harnesses
//	GET    /metrics               Prometheus-style counters, no deps
//	GET    /healthz               liveness
//	GET    /readyz                readiness (503 while draining/saturated)
//	GET    /debug/pprof/          profiling (only with Config.EnablePprof)
//
// Submission consults the result cache first: a request whose
// canonical config hash is already cached gets a job that is born
// done, carrying the cached result — the simulator never runs.
//
// Overload and shutdown degrade gracefully rather than falling over
// (docs/ROBUSTNESS.md): a full queue sheds the submission with 429 +
// Retry-After, a draining pool answers 503, request bodies are capped,
// and a panicking handler or job is isolated and counted, never fatal.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maps-sim/mapsim/internal/experiments"
	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/fleet"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/journal"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/store"
	"github.com/maps-sim/mapsim/internal/sweep"
	"github.com/maps-sim/mapsim/internal/workload"
)

// faultSubmit is the injection point armed (as "server.submit") to
// make the submit handler fail or stall before touching the pool —
// the place a flaky ingress or auth dependency would bite.
var faultSubmit = faults.P("server.submit")

// retryAfterShed is the Retry-After hint (seconds) on a 429 shed
// response: roughly how long one queued simulation takes to start.
const retryAfterShed = 1

// retryAfterDraining is the Retry-After hint (seconds) on a 503 from
// a draining instance — long enough for an LB to fail the next poll
// over to a healthy one.
const retryAfterDraining = 5

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker count (default NumCPU).
	Workers int
	// QueueDepth bounds the backlog; submissions beyond it are shed
	// with 429 + Retry-After (default 64).
	QueueDepth int
	// Shards is the default sim.Config.Shards applied to submitted
	// runs (and suite runs) that leave Shards at 0: 0 keeps them
	// sequential, N > 1 forces N epochs, sim.AutoShards sizes each run
	// to the CPU budget the worker pool leaves unclaimed. Result-cache
	// keys are unaffected — canonicalization erases Shards because the
	// parallel path is bit-identical to the sequential one.
	Shards int
	// CacheEntries bounds the result cache (default 256). Ignored when
	// Store is set — the store's own memory tier rules then.
	CacheEntries int
	// Store, when set, is the tiered persistent result store the
	// daemon answers from and fills (memory LRU over a disk tier over
	// HTTP peers; see internal/store). Nil falls back to a memory-only
	// store of CacheEntries capacity. The server owns the store's
	// lifecycle either way: Shutdown flushes and closes it.
	Store *store.Store
	// Logger receives request logs, job lifecycle events, and
	// simulation spans; nil means silent.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// API mux. Off by default: the daemon may face untrusted clients.
	EnablePprof bool
	// MaxBodyBytes caps request bodies via http.MaxBytesReader
	// (default 1 MiB — generous for a job spec, stingy for a flood).
	MaxBodyBytes int64
	// JobRetries is the per-job retry budget for transient failures
	// (default 2; negative disables retries).
	JobRetries int
	// JobRetryBase is the first retry backoff, doubling per attempt
	// (default 50ms).
	JobRetryBase time.Duration
	// Fleet lists remote sweep workers (typically mapsim.NewWorkerRunner
	// adapters over other daemons, registered via cmd/mapsd -fleet).
	// Sweeps always dispatch through a fleet coordinator; this daemon's
	// own pool is implicitly the first worker, so an empty Fleet is the
	// single-node configuration.
	Fleet []fleet.Worker
	// FleetStragglerAfter re-issues a sweep point still in flight on
	// one worker after this long to another (default 30s; negative
	// disables straggler re-issue).
	FleetStragglerAfter time.Duration
	// Journal, when set, write-ahead-logs every sweep (admission,
	// per-point completions, terminal status — see internal/journal):
	// New replays it, resuming unfinished sweeps under their original
	// IDs with already-completed points served from the result store,
	// so clients reattach to GET /v1/sweeps/{id} across restarts. Nil
	// disables journaling. Wired from cmd/mapsd -journal-dir.
	Journal *journal.Dir
	// SweepTTL evicts finished sweeps from the registry — and removes
	// their journals — this long after they finish (default 1h;
	// negative disables TTL eviction). Their per-point results remain
	// in the store.
	SweepTTL time.Duration
	// MaxSweeps caps the sweep registry; past it the oldest finished
	// sweeps are evicted first (default 512; negative removes the
	// cap). Running sweeps are never evicted by either bound.
	MaxSweeps int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.JobRetries == 0 {
		c.JobRetries = 2
	}
	if c.JobRetryBase <= 0 {
		c.JobRetryBase = 50 * time.Millisecond
	}
	if c.FleetStragglerAfter == 0 {
		c.FleetStragglerAfter = 30 * time.Second
	} else if c.FleetStragglerAfter < 0 {
		c.FleetStragglerAfter = 0 // disabled
	}
	if c.SweepTTL == 0 {
		c.SweepTTL = time.Hour
	} else if c.SweepTTL < 0 {
		c.SweepTTL = 0 // disabled
	}
	if c.MaxSweeps == 0 {
		c.MaxSweeps = 512
	} else if c.MaxSweeps < 0 {
		c.MaxSweeps = 0 // uncapped
	}
}

// jobMeta is the server-side annotation the pool doesn't know about.
type jobMeta struct {
	typ      string
	key      results.Key
	cacheHit bool
	// progress is ticked by the running simulation; nil for jobs born
	// done from the cache.
	progress *obs.Progress
}

// Server wires the HTTP API to the pool and the tiered result store.
type Server struct {
	pool *jobs.Pool
	// store is the tiered result store; cache aliases its memory tier
	// (the old mapsd_cache_* counters keep reading from there).
	store   *store.Store
	cache   *results.Cache
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	http    httpStats

	mu   sync.Mutex
	meta map[string]jobMeta
	// inflight maps a canonical config hash to the ID of the queued or
	// running job computing it, so identical submissions coalesce onto
	// one simulation (singleflight). Entries are cleared when the job
	// function returns or the job is cancelled while queued.
	inflight map[results.Key]string
	deduped  atomic.Uint64

	// Sweep registry (see sweeps.go): coordinators run in their own
	// goroutines and shard points into the pool. journal, when
	// non-nil, write-ahead-logs every sweep; sweepTTL and maxSweeps
	// bound the registry (evictSweeps).
	sweeps    map[string]*sweepJob
	sweepSeq  uint64
	journal   *journal.Dir
	sweepTTL  time.Duration
	maxSweeps int

	// Fleet dispatch state: registered remote workers, the straggler
	// deadline, and the cumulative per-worker counters behind the
	// mapsd_fleet_* metric family.
	fleetWorkers   []fleet.Worker
	stragglerAfter time.Duration
	fleetMetrics   *fleet.Metrics

	// Cumulative sweep counters for the mapsd_sweep_* metric family.
	sweepsStarted      atomic.Uint64
	sweepPointsPlanned atomic.Uint64
	sweepPointsDone    atomic.Uint64
	sweepPointsDeduped atomic.Uint64
	sweepsEvicted      atomic.Uint64
	sweepsRecovered    atomic.Uint64

	// shards is Config.Shards, applied to run configs in runFn/suiteFn.
	shards int

	// Robustness accounting and state.
	maxBody    int64
	shed       atomic.Uint64 // submissions refused with 429 (queue full)
	httpPanics atomic.Uint64 // handler panics recovered by the middleware
	draining   atomic.Bool   // readiness gate; set by MarkDraining/Shutdown

	// Throughput accounting across finished simulations.
	instrTotal atomic.Uint64
	busyNanos  atomic.Int64
	started    time.Time

	// Wall-clock per simulation phase across finished runs, for the
	// mapsd_sim_phase_seconds_total metric family.
	phaseMu   sync.Mutex
	phaseSecs map[string]float64
	phaseRuns uint64
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg.fill()
	log := cfg.Logger
	if log == nil {
		log = obs.Nop()
	}
	st := cfg.Store
	if st == nil {
		st = store.MemoryOnly(results.New(cfg.CacheEntries))
	}
	s := &Server{
		pool: jobs.New(cfg.Workers, cfg.QueueDepth,
			jobs.WithLogger(log),
			jobs.WithRetry(cfg.JobRetries, cfg.JobRetryBase),
			jobs.WithContextWrap(func(ctx context.Context) context.Context {
				// AutoShards runs size their epoch parallelism to the
				// CPU budget the worker pool leaves unclaimed.
				return sim.WithConcurrency(ctx, cfg.Workers)
			})),
		shards:    cfg.Shards,
		store:     st,
		cache:     st.Memory(),
		mux:       http.NewServeMux(),
		log:       log,
		meta:      make(map[string]jobMeta),
		inflight:  make(map[results.Key]string),
		sweeps:    make(map[string]*sweepJob),
		started:   time.Now(),
		phaseSecs: make(map[string]float64),
		maxBody:   cfg.MaxBodyBytes,
		journal:   cfg.Journal,
		sweepTTL:  cfg.SweepTTL,
		maxSweeps: cfg.MaxSweeps,

		fleetWorkers:   cfg.Fleet,
		stragglerAfter: cfg.FleetStragglerAfter,
		fleetMetrics:   &fleet.Metrics{},
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.registerSweepRoutes()
	s.mux.HandleFunc("GET /v1/store/{key}", s.handleStoreGet)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.logMiddleware(s.recoverMiddleware(s.mux))
	// Journal replay last, once the pool and store are serving: every
	// unfinished sweep resumes under its original ID, completed points
	// pre-marked so the store — not the simulator — supplies them.
	if s.journal != nil {
		s.recoverSweeps()
	}
	return s
}

// Handler returns the HTTP entrypoint (the API wrapped in the
// request-logging middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// MarkDraining flips /readyz to 503 without stopping anything: call
// it when shutdown is imminent so load balancers stop routing new
// work here while in-flight requests finish.
func (s *Server) MarkDraining() { s.draining.Store(true) }

// Shutdown drains the pool — queued and running jobs complete unless
// ctx expires first, in which case they are cancelled — then flushes
// and closes the result store, so everything the last jobs computed
// reaches the disk tier before the process exits. Readiness goes
// false immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Abort sweep coordinators first: they submit to the pool from
	// their own goroutines and must not race the drain. Then wait for
	// each to settle — a draining shutdown closes its journal without
	// a terminal record, so the next start resumes it like a crash.
	s.cancelSweeps()
	s.awaitSweeps(ctx)
	err := s.pool.Shutdown(ctx)
	// Close drains the write queue even when the pool drain timed
	// out: persisting what did finish is exactly what makes the next
	// start cheap.
	s.store.Close()
	return err
}

// handleReady is the readiness probe: 200 only when the instance can
// usefully accept a new job. Draining (shutdown imminent) or a
// saturated queue (the next submit would be shed anyway) answer 503,
// taking the instance out of load-balancer rotation while /healthz
// keeps reporting the process itself alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	switch {
	case s.draining.Load() || s.pool.Draining():
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case ps.Queued >= ps.QueueCap:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterShed))
		http.Error(w, "saturated", http.StatusServiceUnavailable)
	default:
		w.Write([]byte("ready\n"))
	}
}

// CacheStats exposes the memory-tier result-cache counters (tests
// and metrics).
func (s *Server) CacheStats() results.Stats { return s.cache.Stats() }

// StoreStats exposes the tiered result-store counters (tests and
// metrics).
func (s *Server) StoreStats() store.Stats { return s.store.Stats() }

// handleStoreGet serves the raw envelope for a content key from the
// local store tiers — the peer-fill protocol's supply side. Peers are
// never consulted recursively, so daemons pointing at each other
// cannot set off a fill storm; a key this daemon doesn't hold locally
// is simply 404, and the asking peer recomputes.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := results.Key(r.PathValue("key"))
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "malformed store key %q (want 64 hex chars)", key)
		return
	}
	raw, ok := s.store.Envelope(key)
	if !ok {
		writeError(w, http.StatusNotFound, "key %s not in local store", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// PoolStats exposes the job-pool counters.
func (s *Server) PoolStats() jobs.Stats { return s.pool.Stats() }

// Deduped returns how many submissions were coalesced onto an
// identical in-flight job (singleflight) — the counter that proves a
// retried submit did not double-run.
func (s *Server) Deduped() uint64 { return s.deduped.Load() }

// SweepsEvicted returns how many finished sweeps the registry has
// evicted (TTL or cap) — behind mapsd_sweeps_evicted_total.
func (s *Server) SweepsEvicted() uint64 { return s.sweepsEvicted.Load() }

// SweepsRecovered returns how many unfinished sweeps startup resumed
// from the journal.
func (s *Server) SweepsRecovered() uint64 { return s.sweepsRecovered.Load() }

// ShedCount returns how many submissions were refused with 429
// because the queue was saturated.
func (s *Server) ShedCount() uint64 { return s.shed.Load() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if err := faultSubmit.Hit(); err != nil {
		// An injected submit failure is reported like any transient
		// dependency outage: unavailable, try again shortly.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterShed))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Type == "" {
		req.Type = TypeRun
	}
	cfg, err := req.Config.ToSim()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	timeout := time.Duration(req.TimeoutSec * float64(time.Second))

	var key results.Key
	var fn jobs.Fn
	prog := new(obs.Progress)
	switch req.Type {
	case TypeRun:
		if len(req.Benchmarks) > 0 {
			writeError(w, http.StatusBadRequest, "run jobs take config.benchmark, not benchmarks")
			return
		}
		if cfg.WorkloadSpec == nil {
			// Spec-driven runs validate through PointKeyFor below (the
			// spec's name is not a registry entry by design).
			if _, err := workload.New(cfg.Benchmark); err != nil {
				writeError(w, http.StatusBadRequest, "bad config: %v", err)
				return
			}
		}
		pol, part, err := req.Config.pointNames()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad config: %v", err)
			return
		}
		key, err = results.PointKeyFor(cfg, pol, part)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad config: %v", err)
			return
		}
		fn = s.runFn(cfg, pol, part, key, prog)
	case TypeSuite:
		if req.Config.Workload != nil {
			// A suite varies the benchmark; a base workload spec would
			// silently override every entry.
			writeError(w, http.StatusBadRequest, "suite jobs cannot set config.workload")
			return
		}
		if req.Config.Meta != nil && (req.Config.Meta.Policy != "" || req.Config.Meta.Partition != "") {
			// Suites share one config across the fan-out; stateful
			// policy instances must not be shared, so suites always
			// run the defaults.
			writeError(w, http.StatusBadRequest, "suite jobs cannot set meta.policy or meta.partition")
			return
		}
		benchmarks := req.Benchmarks
		if len(benchmarks) == 0 {
			benchmarks = workload.Names()
		}
		for _, b := range benchmarks {
			if _, err := workload.New(b); err != nil {
				writeError(w, http.StatusBadRequest, "bad benchmark list: %v", err)
				return
			}
		}
		key, err = results.SuiteKeyFor(cfg, benchmarks)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad config: %v", err)
			return
		}
		fn = s.suiteFn(cfg, benchmarks, req.Parallelism, key, prog)
	default:
		writeError(w, http.StatusBadRequest, "unknown job type %q (want run or suite)", req.Type)
		return
	}

	if !req.NoCache {
		if cached, ok := s.store.Get(r.Context(), key); ok {
			id, err := s.pool.Complete(cached)
			if err != nil {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
				writeError(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			s.noteJob(id, jobMeta{typ: req.Type, key: key, cacheHit: true})
			snap, _ := s.pool.Get(id)
			writeJSON(w, http.StatusOK, s.status(snap))
			return
		}
		// Singleflight: an identical job already queued or running
		// serves this submission too — hand back its ID instead of
		// simulating the same config twice.
		if id, ok := s.inflightJob(key); ok {
			if snap, err := s.pool.Get(id); err == nil && !snap.State.Terminal() {
				s.deduped.Add(1)
				st := s.status(snap)
				st.Deduped = true
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}

	id, err := s.pool.Submit(fn, timeout)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		// Load shedding: refuse early with back-pressure the client
		// can act on, instead of queueing work we cannot start.
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterShed))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrShutdown): // includes ErrDraining
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.noteJob(id, jobMeta{typ: req.Type, key: key, progress: prog})
	if !req.NoCache {
		s.setInflight(key, id)
	}
	snap, _ := s.pool.Get(id)
	writeJSON(w, http.StatusAccepted, s.status(snap))
}

// setInflight registers id as the job computing key.
func (s *Server) setInflight(key results.Key, id string) {
	s.mu.Lock()
	s.inflight[key] = id
	s.mu.Unlock()
}

// inflightJob reports the job currently computing key, if any.
func (s *Server) inflightJob(key results.Key) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.inflight[key]
	return id, ok
}

// clearInflight drops the key→id registration, but only if it still
// points at id: a later identical resubmission may have re-registered
// the key for a fresh job.
func (s *Server) clearInflight(key results.Key, id string) {
	s.mu.Lock()
	if s.inflight[key] == id {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
}

// jobCtx gives the work function a run-scoped logger: job ID doubles
// as the run ID, and every span and lifecycle event below carries it.
func (s *Server) jobCtx(ctx context.Context, typ string, attrs ...any) context.Context {
	id := jobs.IDFromContext(ctx)
	l := s.log.With(append([]any{"job_id", id, "run_id", id, "type", typ}, attrs...)...)
	return obs.Into(ctx, l)
}

// runFn wraps one simulation as a pool job: instantiate the point's
// policy/partition fresh per attempt (sweep.Instantiate — retries
// must never see a warmed instance), run under ctx, account
// throughput and phase timings, populate the cache.
func (s *Server) runFn(cfg sim.Config, policy, partition string, key results.Key, prog *obs.Progress) jobs.Fn {
	cfg.Progress = prog
	return func(ctx context.Context) (any, error) {
		defer s.clearInflight(key, jobs.IDFromContext(ctx))
		ctx = s.jobCtx(ctx, TypeRun, "benchmark", cfg.Benchmark)
		runCfg, err := sweep.Instantiate(sweep.Point{Config: cfg, Policy: policy, Partition: partition})
		if err != nil {
			return nil, err
		}
		if runCfg.Shards == 0 {
			runCfg.Shards = s.shards
		}
		t0 := time.Now()
		res, err := sim.RunContext(ctx, runCfg)
		if err != nil {
			return nil, err
		}
		s.account(res.Instructions, time.Since(t0))
		s.recordTiming(res.Timing)
		s.store.Put(key, res)
		return res, nil
	}
}

func (s *Server) suiteFn(cfg sim.Config, benchmarks []string, parallelism int, key results.Key, prog *obs.Progress) jobs.Fn {
	cfg.Progress = prog
	if cfg.Shards == 0 {
		cfg.Shards = s.shards
	}
	return func(ctx context.Context) (any, error) {
		defer s.clearInflight(key, jobs.IDFromContext(ctx))
		ctx = s.jobCtx(ctx, TypeSuite, "benchmarks", len(benchmarks))
		t0 := time.Now()
		res, err := sim.RunSuiteContext(ctx, cfg, benchmarks, parallelism)
		if err != nil {
			return nil, err
		}
		var instrs uint64
		for _, r := range res.PerBench {
			instrs += r.Instructions
			s.recordTiming(r.Timing)
		}
		s.account(instrs, time.Since(t0))
		s.store.Put(key, res)
		return res, nil
	}
}

// recordTiming folds one run's phase profile into the cumulative
// per-phase counters served at /metrics.
func (s *Server) recordTiming(t sim.PhaseTiming) {
	s.phaseMu.Lock()
	s.phaseSecs["setup"] += t.Setup.Seconds()
	s.phaseSecs["warmup"] += t.Warmup.Seconds()
	s.phaseSecs["measure"] += t.Measure.Seconds()
	s.phaseRuns++
	s.phaseMu.Unlock()
}

func (s *Server) account(instructions uint64, busy time.Duration) {
	s.instrTotal.Add(instructions)
	s.busyNanos.Add(int64(busy))
}

func (s *Server) noteJob(id string, m jobMeta) {
	s.mu.Lock()
	s.meta[id] = m
	s.mu.Unlock()
}

func (s *Server) jobMeta(id string) jobMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta[id]
}

func (s *Server) status(snap jobs.Snapshot) JobStatus {
	m := s.jobMeta(snap.ID)
	return JobStatus{
		ID:       snap.ID,
		Type:     m.typ,
		State:    snap.State,
		Key:      string(m.key),
		CacheHit: m.cacheHit,
		Created:  snap.Created,
		Started:  snap.Started,
		Finished: snap.Finished,
		Error:    snap.Err,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, err := s.pool.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.status(snap))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.pool.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	switch snap.State {
	case jobs.StateDone:
	case jobs.StateQueued, jobs.StateRunning:
		writeError(w, http.StatusConflict, "job %s is %s; poll GET /v1/jobs/%s until done", id, snap.State, id)
		return
	default:
		writeError(w, http.StatusConflict, "job %s is %s: %s", id, snap.State, snap.Err)
		return
	}
	m := s.jobMeta(id)
	out := JobResult{ID: id, Type: m.typ}
	switch res := snap.Result.(type) {
	case *sim.Result:
		out.Run = res
	case *sim.SuiteResult:
		out.Suite = res
	default:
		writeError(w, http.StatusInternalServerError, "job %s holds unexpected result type %T", id, snap.Result)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.pool.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	m := s.jobMeta(id)
	out := JobProgress{ID: id, State: snap.State, CacheHit: m.cacheHit}
	if m.progress != nil {
		ps := m.progress.Snapshot()
		out.InstructionsDone = ps.Done
		out.InstructionsTotal = ps.Total
		out.Fraction = ps.Fraction
		out.ElapsedSec = ps.Elapsed.Seconds()
		out.RemainingSec = ps.Remaining.Seconds()
	}
	if snap.State == jobs.StateDone {
		// A finished job is 100% regardless of tick granularity, and a
		// cache hit never ticked at all.
		out.Fraction = 1
		out.RemainingSec = 0
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.pool.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// A job cancelled while still queued never runs its function, so
	// its singleflight registration must be cleared here.
	if m := s.jobMeta(id); m.key != "" {
		s.clearInflight(m.key, id)
	}
	snap, err := s.pool.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.status(snap))
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"benchmarks":       workload.Names(),
		"memory_intensive": workload.MemoryIntensive(),
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"experiments": experiments.Names()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Scrapes double as the sweep registry's eviction timer: TTL-expired
	// finished sweeps are dropped even on an otherwise idle daemon.
	s.evictSweeps(time.Now())
	ps := s.pool.Stats()
	cs := s.cache.Stats()
	instr := s.instrTotal.Load()
	busy := time.Duration(s.busyNanos.Load())
	var ips float64
	if busy > 0 {
		ips = float64(instr) / busy.Seconds()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP mapsd_jobs_queued Jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE mapsd_jobs_queued gauge\nmapsd_jobs_queued %d\n", ps.Queued)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_running gauge\nmapsd_jobs_running %d\n", ps.Running)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_submitted_total counter\nmapsd_jobs_submitted_total %d\n", ps.Submitted)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_completed_total counter\nmapsd_jobs_completed_total %d\n", ps.Completed)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_failed_total counter\nmapsd_jobs_failed_total %d\n", ps.Failed)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_canceled_total counter\nmapsd_jobs_canceled_total %d\n", ps.Canceled)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_rejected_total counter\nmapsd_jobs_rejected_total %d\n", ps.Rejected)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_deduped_total counter\nmapsd_jobs_deduped_total %d\n", s.deduped.Load())
	fmt.Fprintf(w, "# HELP mapsd_jobs_panics_total Job functions that panicked; every one was isolated by the worker.\n")
	fmt.Fprintf(w, "# TYPE mapsd_jobs_panics_total counter\nmapsd_jobs_panics_total %d\n", ps.Panics)
	fmt.Fprintf(w, "# TYPE mapsd_jobs_retries_total counter\nmapsd_jobs_retries_total %d\n", ps.Retries)
	fmt.Fprintf(w, "# HELP mapsd_requests_shed_total Submissions refused with 429 because the queue was saturated.\n")
	fmt.Fprintf(w, "# TYPE mapsd_requests_shed_total counter\nmapsd_requests_shed_total %d\n", s.shed.Load())
	fmt.Fprintf(w, "# TYPE mapsd_http_panics_total counter\nmapsd_http_panics_total %d\n", s.httpPanics.Load())
	fmt.Fprintf(w, "# TYPE mapsd_workers gauge\nmapsd_workers %d\n", ps.Workers)
	fmt.Fprintf(w, "# HELP mapsd_run_shards Epoch shards currently simulating across all in-flight runs.\n")
	fmt.Fprintf(w, "# TYPE mapsd_run_shards gauge\nmapsd_run_shards %d\n", sim.ActiveShards())
	fmt.Fprintf(w, "# TYPE mapsd_cache_hits_total counter\nmapsd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE mapsd_cache_misses_total counter\nmapsd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE mapsd_cache_evictions_total counter\nmapsd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE mapsd_cache_dropped_puts_total counter\nmapsd_cache_dropped_puts_total %d\n", cs.DroppedPuts)
	fmt.Fprintf(w, "# TYPE mapsd_cache_entries gauge\nmapsd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP mapsd_cache_bytes Approximate resident bytes in the memory result tier.\n")
	fmt.Fprintf(w, "# TYPE mapsd_cache_bytes gauge\nmapsd_cache_bytes %d\n", cs.SizeBytes)
	fmt.Fprintf(w, "# TYPE mapsd_cache_hit_ratio gauge\nmapsd_cache_hit_ratio %g\n", cs.HitRatio())

	sts := s.store.Stats()
	fmt.Fprintf(w, "# HELP mapsd_store_hits_total Result-store lookups answered, by tier.\n")
	fmt.Fprintf(w, "# TYPE mapsd_store_hits_total counter\n")
	fmt.Fprintf(w, "mapsd_store_hits_total{tier=\"memory\"} %d\n", sts.MemHits)
	fmt.Fprintf(w, "mapsd_store_hits_total{tier=\"disk\"} %d\n", sts.DiskHits)
	fmt.Fprintf(w, "mapsd_store_hits_total{tier=\"peer\"} %d\n", sts.PeerFills)
	fmt.Fprintf(w, "# TYPE mapsd_store_misses_total counter\nmapsd_store_misses_total %d\n", sts.Misses)
	fmt.Fprintf(w, "# TYPE mapsd_store_puts_total counter\nmapsd_store_puts_total %d\n", sts.Puts)
	fmt.Fprintf(w, "# TYPE mapsd_store_disk_puts_total counter\nmapsd_store_disk_puts_total %d\n", sts.DiskPuts)
	fmt.Fprintf(w, "# HELP mapsd_store_dropped_disk_puts_total Disk-tier writes lost to faults, write errors, a full queue, or shutdown.\n")
	fmt.Fprintf(w, "# TYPE mapsd_store_dropped_disk_puts_total counter\nmapsd_store_dropped_disk_puts_total %d\n", sts.DroppedDiskPuts)
	fmt.Fprintf(w, "# TYPE mapsd_store_gc_evictions_total counter\nmapsd_store_gc_evictions_total %d\n", sts.GCEvictions)
	fmt.Fprintf(w, "# HELP mapsd_store_quarantined_total Corrupt disk entries moved aside; each costs one recompute, never an error.\n")
	fmt.Fprintf(w, "# TYPE mapsd_store_quarantined_total counter\nmapsd_store_quarantined_total %d\n", sts.Quarantined)
	fmt.Fprintf(w, "# TYPE mapsd_store_disk_errors_total counter\nmapsd_store_disk_errors_total %d\n", sts.DiskErrors)
	fmt.Fprintf(w, "# TYPE mapsd_store_peer_fills_total counter\nmapsd_store_peer_fills_total %d\n", sts.PeerFills)
	fmt.Fprintf(w, "# TYPE mapsd_store_peer_errors_total counter\nmapsd_store_peer_errors_total %d\n", sts.PeerErrors)
	fmt.Fprintf(w, "# TYPE mapsd_store_entries gauge\nmapsd_store_entries %d\n", sts.DiskEntries)
	fmt.Fprintf(w, "# HELP mapsd_store_bytes Bytes resident in the disk tier.\n")
	fmt.Fprintf(w, "# TYPE mapsd_store_bytes gauge\nmapsd_store_bytes %d\n", sts.DiskBytes)
	fmt.Fprintf(w, "# TYPE mapsd_store_pending_writes gauge\nmapsd_store_pending_writes %d\n", sts.PendingWrites)
	fmt.Fprintf(w, "# TYPE mapsd_store_peers gauge\nmapsd_store_peers %d\n", sts.Peers)
	fmt.Fprintf(w, "# TYPE mapsd_simulated_instructions_total counter\nmapsd_simulated_instructions_total %d\n", instr)
	fmt.Fprintf(w, "# TYPE mapsd_simulated_instructions_per_second gauge\nmapsd_simulated_instructions_per_second %g\n", ips)
	fmt.Fprintf(w, "# TYPE mapsd_uptime_seconds gauge\nmapsd_uptime_seconds %g\n", time.Since(s.started).Seconds())

	s.phaseMu.Lock()
	setup, warmup, measure := s.phaseSecs["setup"], s.phaseSecs["warmup"], s.phaseSecs["measure"]
	runs := s.phaseRuns
	s.phaseMu.Unlock()
	fmt.Fprintf(w, "# HELP mapsd_sim_phase_seconds_total Wall-clock per simulation phase across finished runs.\n")
	fmt.Fprintf(w, "# TYPE mapsd_sim_phase_seconds_total counter\n")
	fmt.Fprintf(w, "mapsd_sim_phase_seconds_total{phase=\"setup\"} %g\n", setup)
	fmt.Fprintf(w, "mapsd_sim_phase_seconds_total{phase=\"warmup\"} %g\n", warmup)
	fmt.Fprintf(w, "mapsd_sim_phase_seconds_total{phase=\"measure\"} %g\n", measure)
	fmt.Fprintf(w, "# TYPE mapsd_sim_phase_runs_total counter\nmapsd_sim_phase_runs_total %d\n", runs)

	ss := s.SweepStatsSnapshot()
	s.mu.Lock()
	sweepsRunning := 0
	for _, j := range s.sweeps {
		if !j.snapshot().State.Terminal() {
			sweepsRunning++
		}
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "# HELP mapsd_sweeps_started_total Sweeps admitted by POST /v1/sweeps.\n")
	fmt.Fprintf(w, "# TYPE mapsd_sweeps_started_total counter\nmapsd_sweeps_started_total %d\n", ss.Started)
	fmt.Fprintf(w, "# TYPE mapsd_sweeps_running gauge\nmapsd_sweeps_running %d\n", sweepsRunning)
	fmt.Fprintf(w, "# TYPE mapsd_sweep_points_planned_total counter\nmapsd_sweep_points_planned_total %d\n", ss.PointsPlanned)
	fmt.Fprintf(w, "# TYPE mapsd_sweep_points_done_total counter\nmapsd_sweep_points_done_total %d\n", ss.PointsDone)
	fmt.Fprintf(w, "# HELP mapsd_sweep_points_deduped_total Sweep points served from the results cache without simulating.\n")
	fmt.Fprintf(w, "# TYPE mapsd_sweep_points_deduped_total counter\nmapsd_sweep_points_deduped_total %d\n", ss.PointsDeduped)
	fmt.Fprintf(w, "# HELP mapsd_sweeps_evicted_total Finished sweeps dropped from the registry by TTL or the registry cap.\n")
	fmt.Fprintf(w, "# TYPE mapsd_sweeps_evicted_total counter\nmapsd_sweeps_evicted_total %d\n", s.sweepsEvicted.Load())
	fmt.Fprintf(w, "# HELP mapsd_sweeps_recovered_total Unfinished sweeps resumed from the journal at startup.\n")
	fmt.Fprintf(w, "# TYPE mapsd_sweeps_recovered_total counter\nmapsd_sweeps_recovered_total %d\n", s.sweepsRecovered.Load())

	if s.journal != nil {
		js := s.journal.Stats()
		fmt.Fprintf(w, "# HELP mapsd_journal_appends_total Sweep journal records durably appended.\n")
		fmt.Fprintf(w, "# TYPE mapsd_journal_appends_total counter\nmapsd_journal_appends_total %d\n", js.Appends)
		fmt.Fprintf(w, "# HELP mapsd_journal_dropped_appends_total Journal records lost to write errors or faults; each costs recovery fidelity, never availability.\n")
		fmt.Fprintf(w, "# TYPE mapsd_journal_dropped_appends_total counter\nmapsd_journal_dropped_appends_total %d\n", js.DroppedAppends)
		fmt.Fprintf(w, "# TYPE mapsd_journal_replayed_sweeps_total counter\nmapsd_journal_replayed_sweeps_total %d\n", js.ReplayedSweeps)
		fmt.Fprintf(w, "# TYPE mapsd_journal_recovered_points_total counter\nmapsd_journal_recovered_points_total %d\n", js.RecoveredPoints)
		fmt.Fprintf(w, "# HELP mapsd_journal_truncated_tails_total Torn journal tails healed in place during replay.\n")
		fmt.Fprintf(w, "# TYPE mapsd_journal_truncated_tails_total counter\nmapsd_journal_truncated_tails_total %d\n", js.TruncatedTails)
		fmt.Fprintf(w, "# HELP mapsd_journal_quarantined_total Corrupt journals moved aside; each costs one sweep's recovery, never a crash.\n")
		fmt.Fprintf(w, "# TYPE mapsd_journal_quarantined_total counter\nmapsd_journal_quarantined_total %d\n", js.Quarantined)
	}

	// Fleet dispatch counters, one labeled series per worker this
	// coordinator has ever dispatched to ("local" is this daemon's own
	// pool). Sorted so the exposition is deterministic.
	fs := s.fleetMetrics.Snapshot()
	fleetNames := make([]string, 0, len(fs))
	for name := range fs {
		fleetNames = append(fleetNames, name)
	}
	sort.Strings(fleetNames)
	fmt.Fprintf(w, "# HELP mapsd_fleet_workers Sweep workers this coordinator dispatches to (local pool included).\n")
	fmt.Fprintf(w, "# TYPE mapsd_fleet_workers gauge\nmapsd_fleet_workers %d\n", len(s.fleetWorkers)+1)
	if len(fleetNames) > 0 {
		fmt.Fprintf(w, "# HELP mapsd_fleet_inflight Sweep points currently dispatched, per worker.\n")
		fmt.Fprintf(w, "# TYPE mapsd_fleet_inflight gauge\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_inflight{worker=%q} %d\n", n, fs[n].Inflight)
		}
		fmt.Fprintf(w, "# TYPE mapsd_fleet_points_done_total counter\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_points_done_total{worker=%q} %d\n", n, fs[n].Done)
		}
		fmt.Fprintf(w, "# HELP mapsd_fleet_steals_total Points a worker picked up while another worker was still running them.\n")
		fmt.Fprintf(w, "# TYPE mapsd_fleet_steals_total counter\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_steals_total{worker=%q} %d\n", n, fs[n].Steals)
		}
		fmt.Fprintf(w, "# HELP mapsd_fleet_reissues_total Straggler re-issues charged to the worker that held the point.\n")
		fmt.Fprintf(w, "# TYPE mapsd_fleet_reissues_total counter\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_reissues_total{worker=%q} %d\n", n, fs[n].Reissues)
		}
		fmt.Fprintf(w, "# HELP mapsd_fleet_worker_failures_total Dispatches that failed for worker (not simulation) reasons; each was re-issued up to the attempt cap.\n")
		fmt.Fprintf(w, "# TYPE mapsd_fleet_worker_failures_total counter\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_worker_failures_total{worker=%q} %d\n", n, fs[n].Failures)
		}
		fmt.Fprintf(w, "# HELP mapsd_fleet_unhealthy_total Healthy-to-unhealthy probe transitions, per worker.\n")
		fmt.Fprintf(w, "# TYPE mapsd_fleet_unhealthy_total counter\n")
		for _, n := range fleetNames {
			fmt.Fprintf(w, "mapsd_fleet_unhealthy_total{worker=%q} %d\n", n, fs[n].Unhealthy)
		}
	}

	done, total := s.inflightProgress()
	fmt.Fprintf(w, "# HELP mapsd_inflight_instructions_done Instructions retired by jobs not yet finished.\n")
	fmt.Fprintf(w, "# TYPE mapsd_inflight_instructions_done gauge\nmapsd_inflight_instructions_done %d\n", done)
	fmt.Fprintf(w, "# TYPE mapsd_inflight_instructions_total gauge\nmapsd_inflight_instructions_total %d\n", total)

	for _, line := range s.http.metricsLines() {
		fmt.Fprintln(w, line)
	}

	// Fault-injection accounting, so a chaos run can reconcile every
	// injected fault against the failure counters above. Absent (not
	// zero-valued) when nothing has fired — the overwhelmingly common
	// production state.
	if snap := faults.Snapshot(); len(snap) > 0 {
		points := make([]string, 0, len(snap))
		for point := range snap {
			points = append(points, point)
		}
		sort.Strings(points)
		fmt.Fprintf(w, "# HELP mapsd_faults_injected_total Faults injected per armed injection point.\n")
		fmt.Fprintf(w, "# TYPE mapsd_faults_injected_total counter\n")
		for _, point := range points {
			fmt.Fprintf(w, "mapsd_faults_injected_total{point=%q} %d\n", point, snap[point])
		}
	}
}

// inflightProgress sums progress over every job that is still queued
// or running, for the progress gauges.
func (s *Server) inflightProgress() (done, total uint64) {
	s.mu.Lock()
	type idProg struct {
		id   string
		prog *obs.Progress
	}
	active := make([]idProg, 0, len(s.meta))
	for id, m := range s.meta {
		if m.progress != nil {
			active = append(active, idProg{id, m.progress})
		}
	}
	s.mu.Unlock()
	for _, a := range active {
		snap, err := s.pool.Get(a.id)
		if err != nil || snap.State.Terminal() {
			continue
		}
		ps := a.prog.Snapshot()
		done += ps.Done
		total += ps.Total
	}
	return done, total
}
