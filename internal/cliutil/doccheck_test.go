package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// MissingDocs must flag exactly the undocumented exported names —
// not unexported ones, grouped-decl members, or methods on
// unexported types.
func TestMissingDocsFindsOffenders(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

// Documented is fine.
func Documented() {}

func Undocumented() {}

func unexported() {}

// Grouped covers both members.
const (
	A = 1
	B = 2
)

var Naked = 3

type Bare struct{}

// T is fine.
type T struct{}

func (T) Method() {}

type hidden struct{}

func (hidden) Exported() {}

// WithLineComment needs no doc.
var WithLine = 4 // WithLine explains itself
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := MissingDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range missing {
		names = append(names, m[strings.LastIndex(m, " ")+1:])
	}
	want := map[string]bool{"Undocumented": true, "Naked": true, "Bare": true, "T.Method": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("flagged %q, which is documented or not exported", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missed undocumented %q (flagged: %v)", n, names)
	}
}

// The observability PR's godoc contract: these packages keep every
// exported identifier documented. Runs under plain `go test`, so
// `make check` (and its lint target) catches regressions.
func TestRepoPackagesFullyDocumented(t *testing.T) {
	for _, dir := range []string{
		".", // cliutil itself
		"../obs",
		"../jobs",
		"../results",
		"../server",
		"../faults",
		"../sweep",
		"../store",
		"../fleet",
		"../journal",
		"../trace",
		"../workload",
		"../workload/spec",
		"../..", // root package: client.go, mapsim.go, worker.go
	} {
		missing, err := MissingDocs(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range missing {
			t.Errorf("%s: undocumented exported identifier: %s", dir, m)
		}
	}
}
