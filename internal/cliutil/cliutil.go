// Package cliutil holds the small helpers the command-line tools
// share, kept out of package main so they are testable.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses human-readable capacities: "64KB", "2MB", "512B",
// or a bare byte count. It is case-insensitive and ignores
// surrounding whitespace.
func ParseSize(s string) (int, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad size %q", orig)
	}
	if n < 0 {
		return 0, fmt.Errorf("cliutil: negative size %q", orig)
	}
	return n * mult, nil
}

// FormatSize renders a byte count the way the paper's axes do.
func FormatSize(bytes int) string {
	switch {
	case bytes >= 1<<30 && bytes%(1<<30) == 0:
		return fmt.Sprintf("%dGB", bytes>>30)
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
