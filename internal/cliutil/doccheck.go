package cliutil

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// MissingDocs parses every non-test Go file in dir and reports the
// exported identifiers that lack a doc comment, as "file:line: ident"
// strings sorted by position. It is the repo's dependency-free
// substitute for a doc-comment linter: a test feeds it the packages
// whose godoc must stay complete, so `make check` fails when an
// exported declaration loses its comment.
//
// Covered: exported funcs and methods (on exported receivers),
// types, and each exported name in const/var declarations. A comment
// on the enclosing grouped declaration covers its members, matching
// godoc's rendering.
func MissingDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("cliutil: parse %s: %w", dir, err)
	}
	var missing []string
	note := func(pos token.Pos, ident string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, ident))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverName(d); recv != "" && !ast.IsExported(recv) {
						continue // method on unexported type: not in godoc
					}
					note(d.Pos(), funcLabel(d))
				case *ast.GenDecl:
					checkGenDecl(d, note)
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkGenDecl reports undocumented exported names in a type, const,
// or var declaration. A doc comment on the grouped decl itself
// suffices for all members.
func checkGenDecl(d *ast.GenDecl, note func(token.Pos, string)) {
	if d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				note(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					note(name.Pos(), name.Name)
				}
			}
		}
	}
}

// receiverName extracts a method's receiver type name ("" for plain
// functions), unwrapping pointers and generic instantiations.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// funcLabel renders "Name" or "Recv.Name" for error messages.
func funcLabel(d *ast.FuncDecl) string {
	if recv := receiverName(d); recv != "" {
		return recv + "." + d.Name.Name
	}
	return d.Name.Name
}
