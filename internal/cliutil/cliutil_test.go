package cliutil

import (
	"testing"
	"testing/quick"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"64KB":  64 << 10,
		"2MB":   2 << 20,
		"1GB":   1 << 30,
		"512B":  512,
		"0":     0,
		"128":   128,
		" 16kb": 16 << 10,
		"4mb ":  4 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "12XB", "-5KB", "KB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int]string{
		64 << 10: "64KB",
		2 << 20:  "2MB",
		1 << 30:  "1GB",
		512:      "512B",
		1500:     "1500B",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(kb uint16) bool {
		n := int(kb) << 10
		got, err := ParseSize(FormatSize(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
