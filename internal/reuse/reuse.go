// Package reuse measures metadata reuse distances the way MAPS
// Figures 3–5 do: exact LRU stack distances over the combined
// metadata access stream (so distances reflect competition between
// types in one shared cache), reported in bytes, split by metadata
// type and by request-type transition, plus the paper's four-class
// bimodality breakdown.
package reuse

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/stats"
)

// StackDist computes exact LRU stack distances (number of distinct
// blocks touched between consecutive accesses to the same block)
// using a Fenwick tree over access positions.
type StackDist struct {
	last  map[uint64]int64
	marks []bool  // mark at the most recent position of each block
	bit   []int64 // Fenwick tree over marks, 1-indexed
	n     int64
}

// NewStackDist creates an analyzer with capacity for sizeHint
// accesses; it grows automatically beyond that.
func NewStackDist(sizeHint int) *StackDist {
	if sizeHint < 1024 {
		sizeHint = 1024
	}
	return &StackDist{
		last:  make(map[uint64]int64),
		marks: make([]bool, sizeHint),
		bit:   make([]int64, sizeHint+1),
	}
}

func (s *StackDist) grow() {
	marks := make([]bool, len(s.marks)*2)
	copy(marks, s.marks)
	s.marks = marks
	s.bit = make([]int64, len(marks)+1)
	for i, m := range s.marks {
		if m {
			s.bitAdd(int64(i), 1)
		}
	}
}

func (s *StackDist) bitAdd(pos, delta int64) {
	for i := pos + 1; i < int64(len(s.bit)); i += i & (-i) {
		s.bit[i] += delta
	}
}

// bitSum returns the number of marks at positions <= pos.
func (s *StackDist) bitSum(pos int64) int64 {
	var sum int64
	for i := pos + 1; i > 0; i -= i & (-i) {
		sum += s.bit[i]
	}
	return sum
}

// Access records one access and returns the stack distance in
// distinct blocks since the previous access to addr. cold reports a
// first-ever access (distance undefined).
func (s *StackDist) Access(addr uint64) (dist int64, cold bool) {
	i := s.n
	s.n++
	for i >= int64(len(s.marks)) {
		s.grow()
	}
	prev, seen := s.last[addr]
	if seen {
		// Marks strictly between prev and i are the distinct blocks
		// touched since.
		dist = s.bitSum(i-1) - s.bitSum(prev)
		s.marks[prev] = false
		s.bitAdd(prev, -1)
	} else {
		dist, cold = -1, true
	}
	s.marks[i] = true
	s.bitAdd(i, 1)
	s.last[addr] = i
	return dist, cold
}

// Transition classifies consecutive request types to the same block.
type Transition uint8

// Transition values: previous request → current request.
const (
	RtoR Transition = iota
	RtoW
	WtoR
	WtoW
)

// Transitions lists all transitions in display order.
var Transitions = []Transition{RtoR, RtoW, WtoR, WtoW}

// String names the transition as in Figure 5.
func (t Transition) String() string {
	switch t {
	case RtoR:
		return "read-after-read"
	case RtoW:
		return "write-after-read"
	case WtoR:
		return "read-after-write"
	case WtoW:
		return "write-after-write"
	default:
		return fmt.Sprintf("Transition(%d)", int(t))
	}
}

// The paper's Figure 4 classes, in bytes (128/256/512 blocks).
var (
	// ClassBounds are the upper edges of the first three reuse
	// classes; the fourth is everything above.
	ClassBounds = [3]uint64{8 << 10, 16 << 10, 32 << 10}
	// ClassLabels names the four classes.
	ClassLabels = [4]string{"<=8KB", "8-16KB", "16-32KB", ">32KB"}
)

type transKey struct {
	kind  memlayout.Kind
	trans Transition
}

// Analyzer accumulates reuse statistics over a metadata access
// stream.
type Analyzer struct {
	sd      *StackDist
	byKind  map[memlayout.Kind]*stats.Histogram
	byTrans map[transKey]*stats.Histogram
	lastReq map[uint64]bool // block -> last access was a write
	cold    map[memlayout.Kind]uint64
	total   map[memlayout.Kind]uint64
}

// NewAnalyzer creates an empty analyzer; sizeHint estimates the
// stream length.
func NewAnalyzer(sizeHint int) *Analyzer {
	return &Analyzer{
		sd:      NewStackDist(sizeHint),
		byKind:  make(map[memlayout.Kind]*stats.Histogram),
		byTrans: make(map[transKey]*stats.Histogram),
		lastReq: make(map[uint64]bool),
		cold:    make(map[memlayout.Kind]uint64),
		total:   make(map[memlayout.Kind]uint64),
	}
}

// Record feeds one metadata access (block-aligned address).
func (a *Analyzer) Record(addr uint64, kind memlayout.Kind, write bool) {
	dist, cold := a.sd.Access(addr)
	a.total[kind]++

	prevW, seen := a.lastReq[addr]
	a.lastReq[addr] = write

	if cold {
		a.cold[kind]++
		return
	}
	bytes := uint64(dist) * memlayout.BlockSize
	h := a.byKind[kind]
	if h == nil {
		h = stats.NewHistogram()
		a.byKind[kind] = h
	}
	h.Add(bytes)

	if seen {
		tr := transitionOf(prevW, write)
		k := transKey{kind, tr}
		th := a.byTrans[k]
		if th == nil {
			th = stats.NewHistogram()
			a.byTrans[k] = th
		}
		th.Add(bytes)
	}
}

func transitionOf(prevWrite, write bool) Transition {
	switch {
	case !prevWrite && !write:
		return RtoR
	case !prevWrite && write:
		return RtoW
	case prevWrite && !write:
		return WtoR
	default:
		return WtoW
	}
}

// Accesses reports the recorded access count for a kind.
func (a *Analyzer) Accesses(kind memlayout.Kind) uint64 { return a.total[kind] }

// ColdAccesses reports first-touch accesses for a kind.
func (a *Analyzer) ColdAccesses(kind memlayout.Kind) uint64 { return a.cold[kind] }

// CDF evaluates the reuse-distance CDF (fraction of *reused* accesses
// with distance <= each threshold, in bytes) for a kind.
func (a *Analyzer) CDF(kind memlayout.Kind, thresholds []uint64) []float64 {
	h := a.byKind[kind]
	if h == nil {
		return make([]float64, len(thresholds))
	}
	return h.CDF(thresholds)
}

// TransitionCDF evaluates the per-request-type CDF of Figure 5.
func (a *Analyzer) TransitionCDF(kind memlayout.Kind, tr Transition, thresholds []uint64) []float64 {
	h := a.byTrans[transKey{kind, tr}]
	if h == nil {
		return make([]float64, len(thresholds))
	}
	return h.CDF(thresholds)
}

// TransitionCount reports how many accesses fell in a transition
// class.
func (a *Analyzer) TransitionCount(kind memlayout.Kind, tr Transition) uint64 {
	h := a.byTrans[transKey{kind, tr}]
	if h == nil {
		return 0
	}
	return h.Total()
}

// Classes returns the Figure 4 breakdown for a kind: fractions of all
// accesses (cold ones count as the largest class) in
// {<=8KB, 8-16KB, 16-32KB, >32KB}.
func (a *Analyzer) Classes(kind memlayout.Kind) [4]float64 {
	var out [4]float64
	total := a.total[kind]
	if total == 0 {
		return out
	}
	h := a.byKind[kind]
	var counts [4]uint64
	if h != nil {
		reused := h.Total()
		c0 := uint64(float64(reused) * h.FractionAtOrBelow(ClassBounds[0]))
		c1 := h.CountBetween(ClassBounds[0], ClassBounds[1])
		c2 := h.CountBetween(ClassBounds[1], ClassBounds[2])
		counts[0] = c0
		counts[1] = c1
		counts[2] = c2
		counts[3] = reused - c0 - c1 - c2
	}
	counts[3] += a.cold[kind]
	for i := range out {
		out[i] = float64(counts[i]) / float64(total)
	}
	return out
}

// BimodalityScore returns the combined mass of the two extreme
// classes; values near 1 mean "short or long, nothing in between".
func (a *Analyzer) BimodalityScore(kind memlayout.Kind) float64 {
	c := a.Classes(kind)
	return c[0] + c[3]
}
