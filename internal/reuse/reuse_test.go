package reuse

import (
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

func TestStackDistBasics(t *testing.T) {
	sd := NewStackDist(0)
	if _, cold := sd.Access(0); !cold {
		t.Error("first access not cold")
	}
	// A B C A: distance of the second A is 2 (B and C between).
	sd2 := NewStackDist(0)
	sd2.Access(0)
	sd2.Access(64)
	sd2.Access(128)
	d, cold := sd2.Access(0)
	if cold || d != 2 {
		t.Errorf("dist = %d cold=%v, want 2", d, cold)
	}
}

func TestStackDistImmediateReuse(t *testing.T) {
	sd := NewStackDist(0)
	sd.Access(0)
	d, _ := sd.Access(0)
	if d != 0 {
		t.Errorf("back-to-back distance = %d, want 0", d)
	}
}

func TestStackDistRepeatsDontInflate(t *testing.T) {
	// A B B B A: distance of second A is 1 (only B between, counted
	// once).
	sd := NewStackDist(0)
	sd.Access(0)
	sd.Access(64)
	sd.Access(64)
	sd.Access(64)
	d, _ := sd.Access(0)
	if d != 1 {
		t.Errorf("dist = %d, want 1", d)
	}
}

// Oracle: naive set-scan implementation.
func TestPropertyStackDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sd := NewStackDist(4) // force growth
	type rec struct{ addr uint64 }
	var history []rec
	lastIdx := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(64)) * 64
		var want int64 = -1
		if j, ok := lastIdx[addr]; ok {
			seen := map[uint64]bool{}
			for k := j + 1; k < len(history); k++ {
				seen[history[k].addr] = true
			}
			want = int64(len(seen))
		}
		got, cold := sd.Access(addr)
		if cold != (want == -1) || (!cold && got != want) {
			t.Fatalf("access %d addr %#x: got %d cold=%v, want %d", i, addr, got, cold, want)
		}
		lastIdx[addr] = len(history)
		history = append(history, rec{addr})
	}
}

func TestTransitionOf(t *testing.T) {
	cases := map[Transition][2]bool{
		RtoR: {false, false}, RtoW: {false, true},
		WtoR: {true, false}, WtoW: {true, true},
	}
	for want, c := range cases {
		if got := transitionOf(c[0], c[1]); got != want {
			t.Errorf("transitionOf(%v,%v) = %v, want %v", c[0], c[1], got, want)
		}
	}
	for _, tr := range Transitions {
		if tr.String() == "" {
			t.Error("empty transition name")
		}
	}
	if Transition(9).String() == "" {
		t.Error("unknown transition should still print")
	}
}

func TestAnalyzerCDF(t *testing.T) {
	a := NewAnalyzer(0)
	// Counter block reused at distance 1 (one hash between);
	// repeated 10 times.
	for i := 0; i < 10; i++ {
		a.Record(1000, memlayout.KindCounter, false)
		a.Record(2000, memlayout.KindHash, false)
	}
	if got := a.Accesses(memlayout.KindCounter); got != 10 {
		t.Errorf("counter accesses = %d", got)
	}
	if got := a.ColdAccesses(memlayout.KindCounter); got != 1 {
		t.Errorf("cold = %d", got)
	}
	cdf := a.CDF(memlayout.KindCounter, []uint64{64, 1 << 20})
	if cdf[0] != 1 || cdf[1] != 1 {
		t.Errorf("CDF = %v, want all reuse at 64B", cdf)
	}
	// Unknown kind: zeros.
	z := a.CDF(memlayout.KindTree, []uint64{1024})
	if z[0] != 0 {
		t.Error("empty kind CDF should be 0")
	}
}

func TestAnalyzerTransitions(t *testing.T) {
	a := NewAnalyzer(0)
	// W W R W on the same hash block.
	a.Record(0, memlayout.KindHash, true)
	a.Record(0, memlayout.KindHash, true)  // WtoW
	a.Record(0, memlayout.KindHash, false) // WtoR
	a.Record(0, memlayout.KindHash, true)  // RtoW
	if got := a.TransitionCount(memlayout.KindHash, WtoW); got != 1 {
		t.Errorf("WtoW = %d", got)
	}
	if got := a.TransitionCount(memlayout.KindHash, WtoR); got != 1 {
		t.Errorf("WtoR = %d", got)
	}
	if got := a.TransitionCount(memlayout.KindHash, RtoW); got != 1 {
		t.Errorf("RtoW = %d", got)
	}
	if got := a.TransitionCount(memlayout.KindHash, RtoR); got != 0 {
		t.Errorf("RtoR = %d", got)
	}
	cdf := a.TransitionCDF(memlayout.KindHash, WtoW, []uint64{64})
	if cdf[0] != 1 {
		t.Errorf("WtoW CDF = %v", cdf)
	}
	if z := a.TransitionCDF(memlayout.KindCounter, WtoW, []uint64{64}); z[0] != 0 {
		t.Error("empty transition CDF should be 0")
	}
}

func TestClassesBimodal(t *testing.T) {
	a := NewAnalyzer(0)
	// Construct a stream where a counter block alternates between
	// very short reuse (distance 0) and very long reuse (>512
	// distinct blocks between).
	hot := uint64(1 << 30)
	for rep := 0; rep < 20; rep++ {
		a.Record(hot, memlayout.KindCounter, false)
		a.Record(hot, memlayout.KindCounter, false) // distance 0
		for i := 0; i < 600; i++ {
			a.Record(uint64(rep*600+i+1)*64, memlayout.KindHash, false)
		}
	}
	c := a.Classes(memlayout.KindCounter)
	if c[0] < 0.4 {
		t.Errorf("short class = %v, want ~0.5", c[0])
	}
	if c[3] < 0.4 {
		t.Errorf("long class = %v, want ~0.5 (incl. cold)", c[3])
	}
	if c[1]+c[2] > 0.15 {
		t.Errorf("middle classes = %v, want near zero", c[1]+c[2])
	}
	if s := a.BimodalityScore(memlayout.KindCounter); s < 0.85 {
		t.Errorf("bimodality score = %v", s)
	}
	var zero Analyzer
	zero.total = map[memlayout.Kind]uint64{}
	if c := zero.Classes(memlayout.KindHash); c != [4]float64{} {
		t.Error("empty classes should be zero")
	}
}

func TestClassesSumToOne(t *testing.T) {
	a := NewAnalyzer(0)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20000; i++ {
		a.Record(uint64(rng.Intn(2048))*64, memlayout.KindTree, rng.Intn(3) == 0)
	}
	c := a.Classes(memlayout.KindTree)
	sum := c[0] + c[1] + c[2] + c[3]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("classes sum to %v: %v", sum, c)
	}
}
