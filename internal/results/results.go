// Package results is a content-addressed, LRU-bounded cache of
// simulation results. Jobs are keyed by a canonical hash of the
// simulation configuration (after sim.Config.Canonical applies every
// default), so two requests that would simulate identically — however
// differently they were spelled — share one cache entry and the
// second is served without re-running the simulator.
//
// Canonicalization rules (also in DESIGN.md):
//
//  1. Defaults are applied first via sim.Config.Canonical, so an
//     omitted field and its explicit default hash equal.
//  2. Configs carrying caller state (Workload, Tap, Meta.Policy,
//     Meta.Partition) are rejected — function values and stateful
//     policy instances have no canonical encoding.
//  3. Every remaining field is written into the hash in a fixed
//     order with an explicit field tag, so reordering or adding
//     fields can never silently collide with an old encoding.
//  4. Suite jobs additionally hash the benchmark list in request
//     order (order changes SuiteResult.Order, hence the result).
package results

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"sync"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/sim"
)

// faultPut is the injection point armed (as "results.put") to make
// cache stores fail: the write is dropped, so the service keeps
// working but re-simulates what it could not remember — the graceful
// degradation a real cache-backend outage would cause.
var faultPut = faults.P("results.put")

// Key is a content address: hex-encoded SHA-256 of the canonical
// configuration encoding.
type Key string

// hashField writes a tagged scalar into the hash. The tag keeps
// field boundaries unambiguous (two adjacent integers can never
// re-associate) and makes encodings self-describing enough that
// adding a field changes every affected hash.
func hashField(h hash.Hash, tag string, vals ...uint64) {
	h.Write([]byte(tag))
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
}

func hashString(h hash.Hash, tag, s string) {
	hashField(h, tag, uint64(len(s)))
	h.Write([]byte(s))
}

func hashFloat(h hash.Hash, tag string, f float64) {
	hashField(h, tag, math.Float64bits(f))
}

// KeyFor computes the content address of a single simulation run.
func KeyFor(cfg sim.Config) (Key, error) {
	c, err := cfg.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	hashString(h, "kind", "run")
	hashConfig(h, c)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// SuiteKeyFor computes the content address of a suite fan-out: the
// shared configuration plus the benchmark list in request order. The
// base config's Benchmark is excluded — RunSuite overrides it per
// benchmark, so it cannot influence the result.
func SuiteKeyFor(base sim.Config, benchmarks []string) (Key, error) {
	// A suite base config legitimately omits Benchmark; satisfy
	// Canonical with a placeholder that is then ignored.
	base.Benchmark = "-"
	c, err := base.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	hashString(h, "kind", "suite")
	hashConfig(h, c)
	hashField(h, "benchcount", uint64(len(benchmarks)))
	for _, b := range benchmarks {
		hashString(h, "bench", b)
	}
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// PointKeyFor computes the content address of one sweep point: the
// simulation config plus the replacement-policy and partition-scheme
// *names* the sweep engine instantiates per run (instances themselves
// are stateful and have no canonical encoding). When both names are
// empty — the metadata cache's built-in defaults — the key degrades to
// KeyFor's plain run key, so a sweep point and an identical single-run
// job share one cache entry.
func PointKeyFor(cfg sim.Config, policy, partition string) (Key, error) {
	if policy == "" && partition == "" {
		return KeyFor(cfg)
	}
	c, err := cfg.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	hashString(h, "kind", "point")
	hashConfig(h, c)
	hashString(h, "policy", policy)
	hashString(h, "partition", partition)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// hashConfig writes every canonicalized field. Keep this in lockstep
// with sim.Config: a new field must be hashed here or identical keys
// could map to different simulations.
func hashConfig(h hash.Hash, c sim.Config) {
	hashString(h, "bench", c.Benchmark)
	hashField(h, "instr", c.Instructions)
	hashField(h, "warmup", c.Warmup)
	hashField(h, "seed", uint64(c.Seed))
	hashField(h, "hier",
		uint64(c.Hierarchy.L1Size), uint64(c.Hierarchy.L1Ways),
		uint64(c.Hierarchy.L2Size), uint64(c.Hierarchy.L2Ways),
		uint64(c.Hierarchy.L3Size), uint64(c.Hierarchy.L3Ways))
	secure := uint64(0)
	if c.Secure {
		secure = 1
	}
	hashField(h, "secure", secure)
	hashField(h, "org", uint64(c.Org))
	if c.Meta != nil {
		hashField(h, "meta",
			uint64(c.Meta.Size), uint64(c.Meta.Ways), uint64(c.Meta.Content))
		partial := uint64(0)
		if c.Meta.PartialWrites {
			partial = 1
		}
		hashField(h, "partial", partial)
	}
	spec := uint64(0)
	if c.Speculation {
		spec = 1
	}
	hashField(h, "spec", spec, c.SpeculationWindow)
	hashField(h, "dram",
		uint64(c.DRAM.Banks), c.DRAM.RowBytes,
		c.DRAM.TRCD, c.DRAM.TCAS, c.DRAM.TRP, c.DRAM.TBurst)
	hashFloat(h, "drampjb", c.DRAM.EnergyPJPerBit)
	hashFloat(h, "dramact", c.DRAM.RowActivatePJ)
	hashFloat(h, "cpi", c.BaseCPI)
	hashField(h, "lat", c.L2HitLatency, c.L3HitLatency)
	if c.WorkloadSpec != nil {
		// Canonical() already normalized the spec, so equivalent
		// spellings serialize — and therefore hash — identically. The
		// tag keeps a spec-driven run from ever colliding with a named
		// benchmark of the same label.
		hashString(h, "wspec", string(c.WorkloadSpec.CanonicalJSON()))
	}
}

// Stats counts cache activity. Hits/Misses/Evictions are cumulative;
// Entries is the current population.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// DroppedPuts counts stores abandoned by an armed results.put
	// fault — writes the cache "lost" during fault injection.
	DroppedPuts uint64 `json:"dropped_puts"`
	Entries     int    `json:"entries"`
	Capacity    int    `json:"capacity"`
	// SizeBytes approximates resident value bytes (JSON-encoded size,
	// measured once per Put), so the memory tier reports capacity in
	// the same unit as the disk tier under it (mapsd_cache_bytes vs
	// mapsd_store_bytes).
	SizeBytes int64 `json:"size_bytes"`
}

// HitRatio returns Hits / (Hits + Misses), zero when idle.
func (s Stats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

type entry struct {
	key   Key
	value any
	size  int64
}

// sizeOf approximates a value's resident size as its JSON encoding
// length — the same bytes the disk tier would store, so the two
// tiers' byte gauges are comparable. Unencodable values count zero.
func sizeOf(v any) int64 {
	data, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	return int64(len(data))
}

// Cache is a thread-safe LRU-bounded map from content address to
// result. Values are opaque (the server stores *sim.Result and
// *sim.SuiteResult); the cache never mutates them, and callers must
// treat returned values as shared and immutable.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[Key]*list.Element
	stats Stats
}

// New creates a cache holding at most capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[Key]*list.Element, capacity),
	}
}

// Get returns the cached value for key, marking it most recently
// used, and records a hit or miss.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Peek returns the cached value for key without counting a hit or
// miss and without refreshing recency — the read-through the store's
// peer-serving path uses, so serving another daemon's fill never
// distorts this daemon's own LRU order or hit ratio.
func (c *Cache) Peek(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).value, true
}

// Put stores value under key, evicting the least recently used entry
// when full. Storing an existing key refreshes its value and recency.
// An armed results.put fault drops the write (counted in
// Stats.DroppedPuts): callers never see an error, they just lose the
// caching — the same contract a best-effort external cache would have.
func (c *Cache) Put(key Key, value any) {
	if err := faultPut.Hit(); err != nil {
		c.mu.Lock()
		c.stats.DroppedPuts++
		c.mu.Unlock()
		return
	}
	size := sizeOf(value) // measured outside the lock; encoding isn't free
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		c.stats.SizeBytes += size - e.size
		e.value, e.size = value, size
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*entry)
		delete(c.byKey, old.key)
		c.stats.SizeBytes -= old.size
		c.stats.Evictions++
	}
	c.byKey[key] = c.order.PushFront(&entry{key: key, value: value, size: size})
	c.stats.SizeBytes += size
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	s.Capacity = c.cap
	return s
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("results.Cache{%d/%d entries, %d hits, %d misses, %d evictions}",
		s.Entries, s.Capacity, s.Hits, s.Misses, s.Evictions)
}
