package results

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
)

func TestKeyStability(t *testing.T) {
	a, err := KeyFor(sim.Config{Benchmark: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyFor(sim.Config{Benchmark: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical configs hash differently: %s vs %s", a, b)
	}

	// The well-known address of the default fft run. If this changes,
	// either the canonicalization rules changed (update DESIGN.md and
	// this constant together) or hashing accidentally became
	// non-deterministic.
	const want = Key("e609d25bf2aff5c6ddad55d63cc3b73d81adab2179fe9ed04747edc13b87209b")
	if a != want {
		t.Errorf("canonical hash changed: got %s, want %s", a, want)
	}
}

func TestKeyDefaultsEquivalence(t *testing.T) {
	implicit, err := KeyFor(sim.Config{Benchmark: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := KeyFor(sim.Config{
		Benchmark:    "fft",
		Instructions: 2_000_000,
		Warmup:       200_000,
		Seed:         1,
		BaseCPI:      1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatal("omitted defaults and explicit defaults must share one address")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := sim.Config{Benchmark: "fft", Secure: true,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}}
	k0, err := KeyFor(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []sim.Config{
		{Benchmark: "canneal", Secure: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8}},
		{Benchmark: "fft", Secure: true, Instructions: 1_000_000, Meta: &metacache.Config{Size: 64 << 10, Ways: 8}},
		{Benchmark: "fft", Secure: true, Seed: 7, Meta: &metacache.Config{Size: 64 << 10, Ways: 8}},
		{Benchmark: "fft", Meta: &metacache.Config{Size: 64 << 10, Ways: 8}},                                                // insecure
		{Benchmark: "fft", Secure: true, Meta: &metacache.Config{Size: 128 << 10, Ways: 8}},                                 // bigger cache
		{Benchmark: "fft", Secure: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8, PartialWrites: true}},             // partial writes
		{Benchmark: "fft", Secure: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Content: metacache.CountersOnly}}, // content policy
		{Benchmark: "fft", Secure: true, Speculation: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8}},
		{Benchmark: "fft", Secure: true},
	}
	seen := map[Key]int{k0: -1}
	for i, v := range variants {
		k, err := KeyFor(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}
}

func TestKeyRejectsStatefulConfigs(t *testing.T) {
	if _, err := KeyFor(sim.Config{Benchmark: "fft",
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Policy: policy.NewLRU()}}); err == nil {
		t.Error("want error for stateful Meta.Policy")
	}
	if _, err := KeyFor(sim.Config{}); err == nil {
		t.Error("want error for missing benchmark")
	}
}

func TestSuiteKey(t *testing.T) {
	base := sim.Config{Secure: true}
	k1, err := SuiteKeyFor(base, []string{"fft", "canneal"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := SuiteKeyFor(base, []string{"fft", "canneal"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical suite requests hash differently")
	}
	k3, err := SuiteKeyFor(base, []string{"canneal", "fft"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("benchmark order must be part of the address (it changes SuiteResult.Order)")
	}
	// The base Benchmark is overridden per benchmark by RunSuite, so
	// it must not influence the suite address.
	withBench := base
	withBench.Benchmark = "fft"
	k4, err := SuiteKeyFor(withBench, []string{"fft", "canneal"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k4 {
		t.Fatal("base Benchmark leaked into the suite address")
	}
	// Run and suite addresses live in separate namespaces.
	run, err := KeyFor(sim.Config{Benchmark: "-", Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	if Key(run) == k1 {
		t.Fatal("run and suite addresses collide")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a should have survived eviction")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatal("c should be present")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Capacity != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCacheCounters(t *testing.T) {
	c := New(4)
	c.Get("nope")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", s.Hits, s.Misses)
	}
	if got := s.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio %v, want ~2/3", got)
	}
	// Re-putting an existing key refreshes, never duplicates.
	c.Put("k", "v2")
	if c.Len() != 1 {
		t.Fatalf("len %d after re-put, want 1", c.Len())
	}
	if v, _ := c.Get("k"); v.(string) != "v2" {
		t.Fatal("re-put did not refresh value")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1 (capacity clamps to 1)", c.Len())
	}
}

func TestCacheSizeBytesAccounting(t *testing.T) {
	c := New(2)
	if s := c.Stats(); s.SizeBytes != 0 {
		t.Fatalf("empty cache reports %d bytes", s.SizeBytes)
	}
	small := "x" // 3 JSON bytes: "x"
	big := map[string]int{"aaaaaaaa": 1, "bbbbbbbb": 2}
	c.Put("a", small)
	after1 := c.Stats().SizeBytes
	if after1 <= 0 {
		t.Fatalf("SizeBytes %d after one Put, want > 0", after1)
	}
	c.Put("b", big)
	after2 := c.Stats().SizeBytes
	if after2 <= after1 {
		t.Fatalf("SizeBytes %d did not grow past %d", after2, after1)
	}
	// Overwrite shrinks: replace the big value with a small one.
	c.Put("b", small)
	if got := c.Stats().SizeBytes; got != 2*after1 {
		t.Fatalf("SizeBytes %d after overwrite, want %d", got, 2*after1)
	}
	// Eviction releases the evicted entry's bytes.
	c.Put("c", small) // evicts LRU ("a")
	if got := c.Stats().SizeBytes; got != 2*after1 {
		t.Fatalf("SizeBytes %d after eviction, want %d", got, 2*after1)
	}
	// Peek observes without perturbing counters or LRU order.
	preStats := c.Stats()
	if _, ok := c.Peek("c"); !ok {
		t.Fatal("Peek missed a present key")
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek invented a value")
	}
	post := c.Stats()
	if post.Hits != preStats.Hits || post.Misses != preStats.Misses {
		t.Fatalf("Peek moved counters: %+v -> %+v", preStats, post)
	}
}
