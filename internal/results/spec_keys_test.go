package results

import (
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/sim"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

// specKeyYAML and specKeyJSON describe the same workload in different
// syntaxes, field orders, and default spellings: canonicalization
// must collapse them to one content address.
const specKeyYAML = `
name: key-mix
clients:
  - name: web
    rate_fraction: 0.75
    footprint: 256KB
    arrival:
      process: poisson
  - name: batch
    rate_fraction: 0.25
    footprint: 512KB
    write_fraction: 0.5
`

const specKeyJSON = `{
  "version": 1,
  "name": "key-mix",
  "mean_gap": 4,
  "clients": [
    {"name": "web", "rate_fraction": 0.75, "footprint": 262144,
     "arrival": {"process": "poisson"}, "sequential_run": 1},
    {"name": "batch", "rate_fraction": 0.25, "footprint": "512KB",
     "write_fraction": 0.5}
  ]
}`

func mustParse(t *testing.T, src string) *wspec.Spec {
	t.Helper()
	sp, err := wspec.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestSpecKeySpellingInvariant(t *testing.T) {
	a, err := KeyFor(sim.Config{WorkloadSpec: mustParse(t, specKeyYAML)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyFor(sim.Config{WorkloadSpec: mustParse(t, specKeyJSON)})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equivalent spec spellings hash differently: %s vs %s", a, b)
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	base, err := KeyFor(sim.Config{WorkloadSpec: mustParse(t, specKeyYAML)})
	if err != nil {
		t.Fatal(err)
	}
	changed := mustParse(t, specKeyYAML)
	changed.Clients[1].WriteFraction = 0.25
	k, err := KeyFor(sim.Config{WorkloadSpec: changed})
	if err != nil {
		t.Fatal(err)
	}
	if k == base {
		t.Error("changing a client's write fraction did not change the key")
	}
}

// TestSpecKeyDistinctFromBenchmark guards the collision that would
// poison the cache: a spec named like a benchmark label must never
// share an address with a plain named-benchmark run, even though
// fillDefaults copies the spec name into Benchmark.
func TestSpecKeyDistinctFromBenchmark(t *testing.T) {
	sp := mustParse(t, specKeyYAML)
	specKey, err := KeyFor(sim.Config{WorkloadSpec: sp, Benchmark: sp.Name})
	if err != nil {
		t.Fatal(err)
	}
	benchKey, err := KeyFor(sim.Config{Benchmark: sp.Name})
	if err != nil {
		t.Fatal(err)
	}
	if specKey == benchKey {
		t.Error("spec-driven run shares an address with a named-benchmark run")
	}
}

func TestSpecKeyRejectsInvalidSpec(t *testing.T) {
	sp := mustParse(t, specKeyYAML)
	sp.Clients[0].RateFraction = 2
	if _, err := KeyFor(sim.Config{WorkloadSpec: sp}); err == nil {
		t.Error("KeyFor accepted an invalid spec")
	}
}

func TestKeyRejectsTracePath(t *testing.T) {
	_, err := KeyFor(sim.Config{TracePath: "/tmp/x.mtrc"})
	if err == nil || !strings.Contains(err.Error(), "machine-local") {
		t.Errorf("KeyFor(TracePath) err = %v, want machine-local rejection", err)
	}
}
