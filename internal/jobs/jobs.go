// Package jobs is mapsd's admission layer: a bounded queue feeding a
// fixed worker pool, with per-job cancellation, optional deadlines,
// and a graceful drain for shutdown. Simulations are CPU-bound and
// long (seconds to minutes), so the pool deliberately rejects work
// once the queue is full — back-pressure at submit time beats an
// unbounded backlog the client will time out on anyway.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/obs"
)

// faultRun is the injection point armed (as "jobs.run") to make job
// executions fail, stall, or panic. It is hit inside the recovery
// envelope, so an injected panic exercises the same isolation path an
// organic one would.
var faultRun = faults.P("jobs.run")

// State is a job's lifecycle position. Transitions only move
// rightward: queued → running → {done, failed, canceled}; a queued
// job can also jump straight to canceled.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state can still change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Fn is the unit of work. It must honour ctx: mapsd passes it down
// to sim.RunContext so cancellation reaches the simulation loop. The
// context carries the job's ID, recoverable via IDFromContext.
type Fn func(ctx context.Context) (any, error)

// idKey is the context key carrying the running job's ID.
type idKey struct{}

// IDFromContext returns the ID of the job this context belongs to,
// or "" outside a pool-run Fn. It lets the work function scope its
// logging and metrics to the job without threading the ID by hand.
func IDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(idKey{}).(string)
	return id
}

// Errors returned by Submit.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrShutdown  = errors.New("jobs: pool is shut down")
	// ErrDraining rejects submissions once Shutdown has begun: the pool
	// is completing queued and running work but accepts nothing new. It
	// wraps ErrShutdown, so errors.Is(err, ErrShutdown) keeps matching.
	ErrDraining = fmt.Errorf("jobs: pool is draining: %w", ErrShutdown)
)

// ErrPanic marks a job whose function panicked. The worker recovers,
// records the stack, and fails the job with an error wrapping this
// sentinel; the panic never escapes the pool.
var ErrPanic = errors.New("jobs: job panicked")

// transientError marks an error as retryable; see Transient.
type transientError struct{ err error }

// Error delegates to the wrapped error.
func (e *transientError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *transientError) Unwrap() error { return e.err }

// Transient marks the error retryable.
func (e *transientError) Transient() bool { return true }

// Transient wraps err so IsTransient reports true: a job function
// returns Transient(err) for failures worth retrying (a flaky
// dependency, an injected fault) as opposed to deterministic ones (a
// bad config would fail identically every attempt). A nil err stays
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err — anywhere in its wrap chain —
// carries a `Transient() bool` method returning true. Both
// jobs.Transient wrappers and faults.InjectedError satisfy it.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// Snapshot is an immutable copy of a job's externally visible state.
type Snapshot struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Err is the failure message (failed/canceled states).
	Err string `json:"error,omitempty"`
	// Result is the job's output once done. It is shared, not copied;
	// treat it as immutable.
	Result any `json:"-"`
}

// job is the internal mutable record.
type job struct {
	snap    Snapshot
	fn      Fn
	timeout time.Duration
	cancel  context.CancelFunc // non-nil once running; also set for queued cancellation
	doneCh  chan struct{}      // closed on reaching a terminal state
}

// Stats counts pool activity. Queued/Running are current populations;
// the rest are cumulative.
type Stats struct {
	Workers   int    `json:"workers"`
	QueueCap  int    `json:"queue_capacity"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
	// Panics counts job functions that panicked (each attempt of a
	// retried job counts once). The worker survives every one.
	Panics uint64 `json:"panics"`
	// Retries counts re-executions of jobs whose function returned a
	// transient error with retry budget remaining.
	Retries uint64 `json:"retries"`
}

// Pool runs jobs on a fixed set of workers.
type Pool struct {
	mu      sync.Mutex
	jobs    map[string]*job
	queue   chan *job
	seq     uint64
	closed  bool
	stats   Stats
	wg      sync.WaitGroup // workers
	baseCtx context.Context
	stopAll context.CancelFunc
	log     *slog.Logger

	// Retry policy for transient job failures (see WithRetry).
	maxRetries int
	retryBase  time.Duration
	ctxWrap    func(context.Context) context.Context
}

// Option configures a Pool at construction time.
type Option func(*Pool)

// WithLogger makes the pool emit one structured event per job
// lifecycle transition (enqueued → started → done/failed/canceled,
// each carrying the job ID and current queue depth) plus drain
// events. Without it the pool is silent.
func WithLogger(l *slog.Logger) Option {
	return func(p *Pool) {
		if l != nil {
			p.log = l
		}
	}
}

// WithContextWrap installs a hook applied to every job's context just
// before the job function runs. The server and the sweep engine use
// it to stamp the pool's worker count into job contexts
// (sim.WithConcurrency), so per-run epoch parallelism sizes itself to
// the CPU budget the pool has not already claimed. A nil wrap is
// ignored; only one wrap is kept (last option wins).
func WithContextWrap(wrap func(context.Context) context.Context) Option {
	return func(p *Pool) {
		if wrap != nil {
			p.ctxWrap = wrap
		}
	}
}

// WithRetry sets the retry policy for jobs whose function fails with
// a transient error (IsTransient): up to maxRetries re-executions with
// exponential backoff starting at base (doubling per attempt). A
// negative maxRetries disables retries; base ≤ 0 keeps the default.
// Without this option the pool retries twice starting at 50ms.
func WithRetry(maxRetries int, base time.Duration) Option {
	return func(p *Pool) {
		if maxRetries < 0 {
			maxRetries = 0
		}
		p.maxRetries = maxRetries
		if base > 0 {
			p.retryBase = base
		}
	}
}

// New starts a pool with the given worker count and queue depth
// (both clamped to ≥ 1).
func New(workers, depth int, opts ...Option) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		jobs:       make(map[string]*job),
		queue:      make(chan *job, depth),
		baseCtx:    ctx,
		stopAll:    cancel,
		log:        obs.Nop(),
		maxRetries: 2,
		retryBase:  50 * time.Millisecond,
	}
	for _, o := range opts {
		o(p)
	}
	p.stats.Workers = workers
	p.stats.QueueCap = depth
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues fn, returning the new job's ID. A zero timeout
// means no per-job deadline. Returns ErrQueueFull when the queue is
// at capacity and ErrDraining once Shutdown has begun. The drain
// check and the enqueue happen under one lock, so a submission can
// never race into a closing queue.
func (p *Pool) Submit(fn Fn, timeout time.Duration) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", ErrDraining
	}
	p.seq++
	j := &job{
		snap: Snapshot{
			ID:      fmt.Sprintf("j-%08d", p.seq),
			State:   StateQueued,
			Created: time.Now(),
		},
		fn:      fn,
		timeout: timeout,
		doneCh:  make(chan struct{}),
	}
	select {
	case p.queue <- j:
	default:
		p.seq-- // ID was never exposed; reuse it
		p.stats.Rejected++
		p.log.Warn("job rejected", "reason", "queue full", "queue_depth", p.stats.Queued)
		return "", ErrQueueFull
	}
	p.jobs[j.snap.ID] = j
	p.stats.Submitted++
	p.stats.Queued++
	p.log.Info("job enqueued", "job_id", j.snap.ID, "queue_depth", p.stats.Queued)
	return j.snap.ID, nil
}

// Complete is a convenience for cache hits: it registers a job that
// is already done with the given result, so clients see one uniform
// job lifecycle whether or not the simulator actually ran.
func (p *Pool) Complete(result any) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", ErrDraining
	}
	p.seq++
	now := time.Now()
	j := &job{
		snap: Snapshot{
			ID:       fmt.Sprintf("j-%08d", p.seq),
			State:    StateDone,
			Created:  now,
			Started:  now,
			Finished: now,
			Result:   result,
		},
		doneCh: make(chan struct{}),
	}
	close(j.doneCh)
	p.jobs[j.snap.ID] = j
	p.stats.Submitted++
	p.stats.Completed++
	p.log.Info("job born done", "job_id", j.snap.ID)
	return j.snap.ID, nil
}

// Get returns a snapshot of the job.
func (p *Pool) Get(id string) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snap, nil
}

// Cancel stops a queued or running job. Cancelling a queued job is
// immediate; a running job stops at its next cancellation check.
// Cancelling a terminal job is a no-op (returns nil).
func (p *Pool) Cancel(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.snap.State {
	case StateQueued:
		p.finishLocked(j, StateCanceled, nil, context.Canceled)
	case StateRunning:
		j.cancel() // worker observes ctx and finishes the job
	}
	return nil
}

// Draining reports whether Shutdown has begun: the pool still
// finishes queued and running jobs but rejects new submissions.
// Readiness probes use it to take a draining instance out of rotation.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// then returns the final snapshot.
func (p *Pool) Wait(ctx context.Context, id string) (Snapshot, error) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	select {
	case <-j.doneCh:
		return p.Get(id)
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Run submits fn and blocks until it finishes, returning its result.
// Unlike Submit it absorbs back-pressure: when the queue is full it
// waits and retries instead of returning ErrQueueFull, so batch
// drivers (the sweep engine) can push an arbitrarily large grid
// through a bounded queue. Cancelling ctx cancels the job — queued or
// running — and returns the context error; a failed job returns its
// error with a nil result.
func (p *Pool) Run(ctx context.Context, fn Fn, timeout time.Duration) (any, error) {
	var id string
	for backoff := time.Millisecond; ; {
		var err error
		id, err = p.Submit(fn, timeout)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	snap, err := p.Wait(ctx, id)
	if err != nil {
		// ctx died while waiting; reap the orphaned job.
		p.Cancel(id)
		return nil, err
	}
	switch snap.State {
	case StateDone:
		return snap.Result, nil
	case StateCanceled:
		if snap.Err != "" {
			return nil, fmt.Errorf("jobs: %s canceled: %s", id, snap.Err)
		}
		return nil, context.Canceled
	default:
		return nil, fmt.Errorf("jobs: %s failed: %s", id, snap.Err)
	}
}

// Shutdown stops intake and drains: queued and running jobs run to
// completion. If ctx expires first, everything still in flight is
// cancelled and Shutdown returns ctx.Err() after the workers exit.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.queue) // workers drain the remaining queue, then exit
	p.log.Info("pool draining", "queued", p.stats.Queued, "running", p.stats.Running)
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.log.Info("pool drained")
		return nil
	case <-ctx.Done():
		p.stopAll() // cancel every in-flight job
		<-done
		p.log.Warn("pool drain timed out; in-flight jobs canceled")
		return ctx.Err()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runOne(j)
	}
}

func (p *Pool) runOne(j *job) {
	p.mu.Lock()
	if j.snap.State != StateQueued { // canceled while queued
		p.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(p.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(p.baseCtx, j.timeout)
	}
	ctx = context.WithValue(ctx, idKey{}, j.snap.ID)
	if p.ctxWrap != nil {
		ctx = p.ctxWrap(ctx)
	}
	j.cancel = cancel
	j.snap.State = StateRunning
	j.snap.Started = time.Now()
	p.stats.Queued--
	p.stats.Running++
	p.log.Info("job started",
		"job_id", j.snap.ID,
		"queue_wait", j.snap.Started.Sub(j.snap.Created),
		"queue_depth", p.stats.Queued)
	p.mu.Unlock()

	var result any
	var err error
	for attempt := 0; ; attempt++ {
		result, err = p.invoke(ctx, j)
		if err == nil || !IsTransient(err) || attempt >= p.maxRetries || ctx.Err() != nil {
			break
		}
		backoff := p.retryBase << attempt
		p.mu.Lock()
		p.stats.Retries++
		p.mu.Unlock()
		p.log.Warn("job retrying",
			"job_id", j.snap.ID,
			"attempt", attempt+1,
			"backoff", backoff,
			"error", err.Error())
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
		}
		if cerr := ctx.Err(); cerr != nil {
			// Cancelled (or timed out) mid-backoff: finish as canceled
			// rather than burning another attempt.
			err = cerr
			break
		}
	}
	cancel()

	p.mu.Lock()
	p.stats.Running--
	switch {
	case err == nil:
		p.finishLocked(j, StateDone, result, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		p.finishLocked(j, StateCanceled, nil, err)
	default:
		p.finishLocked(j, StateFailed, nil, err)
	}
	p.mu.Unlock()
}

// invoke runs one attempt of the job function inside a recovery
// envelope: a panic is caught here — the worker goroutine survives —
// recorded with its stack, and converted into an error wrapping
// ErrPanic. The jobs.run fault point fires inside the envelope, so
// injected panics take the identical path.
func (p *Pool) invoke(ctx context.Context, j *job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			p.mu.Lock()
			p.stats.Panics++
			p.mu.Unlock()
			p.log.Error("job panicked; worker recovered",
				"job_id", j.snap.ID,
				"panic", fmt.Sprint(r),
				"stack", string(stack))
			result = nil
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	if err := faultRun.Hit(); err != nil {
		return nil, err
	}
	return j.fn(ctx)
}

// finishLocked moves j to a terminal state. Caller holds p.mu.
func (p *Pool) finishLocked(j *job, state State, result any, err error) {
	if j.snap.State.Terminal() {
		return
	}
	if j.snap.State == StateQueued {
		p.stats.Queued--
	}
	j.snap.State = state
	j.snap.Finished = time.Now()
	j.snap.Result = result
	if err != nil {
		j.snap.Err = err.Error()
	}
	switch state {
	case StateDone:
		p.stats.Completed++
	case StateFailed:
		p.stats.Failed++
	case StateCanceled:
		p.stats.Canceled++
	}
	attrs := []any{
		"job_id", j.snap.ID,
		"state", string(state),
		"duration", j.snap.Finished.Sub(j.snap.Created),
		"queue_depth", p.stats.Queued,
	}
	if j.snap.Err != "" {
		attrs = append(attrs, "error", j.snap.Err)
	}
	p.log.Info("job finished", attrs...)
	close(j.doneCh)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
