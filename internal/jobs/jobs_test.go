package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
)

func TestSubmitRunsToCompletion(t *testing.T) {
	p := New(2, 4)
	defer p.Shutdown(context.Background())
	id, err := p.Submit(func(ctx context.Context) (any, error) { return 42, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result.(int) != 42 {
		t.Fatalf("snap: %+v", snap)
	}
	if snap.Started.IsZero() || snap.Finished.Before(snap.Started) {
		t.Fatalf("timestamps not monotone: %+v", snap)
	}
}

func TestSubmitFailure(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed || snap.Err != "boom" {
		t.Fatalf("snap: %+v", snap)
	}
	if s := p.Stats(); s.Failed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestQueueFull(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker…
	p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}, 0)
	<-started
	// …fill the single queue slot…
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	// …and the third must be rejected with back-pressure.
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if s := p.Stats(); s.Rejected != 1 {
		t.Fatalf("stats: %+v", s)
	}
	close(block)
}

func TestCancelRunning(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	started := make(chan struct{})
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, 0)
	<-started
	if err := p.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled", snap.State)
	}
}

func TestCancelQueued(t *testing.T) {
	p := New(1, 2)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Bool
	p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}, 0)
	<-started
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	}, 0)
	if err := p.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Get(id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled (immediately, while queued)", snap.State)
	}
	close(block)
	p.Shutdown(context.Background())
	if ran.Load() {
		t.Fatal("canceled queued job must never run")
	}
}

func TestJobTimeout(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, 10*time.Millisecond)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled on deadline", snap.State)
	}
}

func TestCompleteRegistersTerminalJob(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, err := p.Complete("cached")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result.(string) != "cached" {
		t.Fatalf("snap: %+v", snap)
	}
	// Wait on an already-done job returns immediately.
	if _, err := p.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrains(t *testing.T) {
	p := New(1, 4)
	var finished atomic.Int32
	slow := func(ctx context.Context) (any, error) {
		time.Sleep(20 * time.Millisecond)
		finished.Add(1)
		return nil, nil
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Submit(slow, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := finished.Load(); got != 3 {
		t.Fatalf("%d jobs finished, want 3 (drain must complete queued work)", got)
	}
	if _, err := p.Submit(slow, 0); !errors.Is(err, ErrShutdown) {
		t.Fatalf("got %v, want ErrShutdown", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	p := New(1, 1)
	started := make(chan struct{})
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // only a cancellation lets this job end
		return nil, ctx.Err()
	}, 0)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	snap, _ := p.Get(id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled after forced shutdown", snap.State)
	}
}

func TestGetUnknown(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	if _, err := p.Get("j-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if err := p.Cancel("j-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

// A panicking job must fail cleanly — stack captured, panic counted —
// while the worker goroutine survives to run the next job.
func TestPanicIsolatedAndCounted(t *testing.T) {
	p := New(1, 2)
	defer p.Shutdown(context.Background())
	id, err := p.Submit(func(ctx context.Context) (any, error) {
		panic("kaboom")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed {
		t.Fatalf("state %s, want failed", snap.State)
	}
	if !strings.Contains(snap.Err, "kaboom") || !strings.Contains(snap.Err, "panicked") {
		t.Fatalf("error %q does not describe the panic", snap.Err)
	}
	s := p.Stats()
	if s.Panics != 1 {
		t.Fatalf("panics %d, want 1", s.Panics)
	}
	if s.Retries != 0 {
		t.Fatalf("retries %d; panics must not be retried", s.Retries)
	}
	// The single worker is still alive: a follow-up job completes.
	id2, _ := p.Submit(func(ctx context.Context) (any, error) { return "alive", nil }, 0)
	snap2, _ := p.Wait(context.Background(), id2)
	if snap2.State != StateDone || snap2.Result.(string) != "alive" {
		t.Fatalf("worker dead after panic: %+v", snap2)
	}
}

// A transiently failing job is retried with backoff and eventually
// succeeds; the retry counter accounts every re-execution.
func TestTransientRetrySucceeds(t *testing.T) {
	p := New(1, 1, WithRetry(3, time.Millisecond))
	defer p.Shutdown(context.Background())
	var attempts atomic.Int32
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		if attempts.Add(1) <= 2 {
			return nil, Transient(fmt.Errorf("blip %d", attempts.Load()))
		}
		return "ok", nil
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateDone || snap.Result.(string) != "ok" {
		t.Fatalf("snap: %+v", snap)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts %d, want 3", got)
	}
	if s := p.Stats(); s.Retries != 2 || s.Failed != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// When every attempt fails transiently the job fails after exhausting
// its budget: maxRetries re-executions, then the final error sticks.
func TestTransientRetryExhausts(t *testing.T) {
	p := New(1, 1, WithRetry(2, time.Millisecond))
	defer p.Shutdown(context.Background())
	var attempts atomic.Int32
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		attempts.Add(1)
		return nil, Transient(errors.New("always down"))
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed {
		t.Fatalf("state %s, want failed", snap.State)
	}
	if got := attempts.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("attempts %d, want 3", got)
	}
	if s := p.Stats(); s.Retries != 2 {
		t.Fatalf("retries %d, want 2", s.Retries)
	}
}

// Non-transient failures fail fast: one attempt, no backoff.
func TestNonTransientNotRetried(t *testing.T) {
	p := New(1, 1, WithRetry(5, time.Millisecond))
	defer p.Shutdown(context.Background())
	var attempts atomic.Int32
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		attempts.Add(1)
		return nil, errors.New("deterministic failure")
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed || attempts.Load() != 1 {
		t.Fatalf("state %s after %d attempts, want failed after 1", snap.State, attempts.Load())
	}
	if s := p.Stats(); s.Retries != 0 {
		t.Fatalf("retries %d, want 0", s.Retries)
	}
}

// IsTransient must see through wrap chains and reject everything else.
func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error is transient")
	}
	if !IsTransient(Transient(errors.New("blip"))) {
		t.Error("Transient() not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("blip")))) {
		t.Error("wrapped transient not detected")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

// Once Shutdown has begun, Submit and Complete must reject with the
// typed ErrDraining (which still matches ErrShutdown for old callers).
func TestSubmitDuringDrainErrDraining(t *testing.T) {
	p := New(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}, 0)
	<-started
	done := make(chan struct{})
	go func() {
		p.Shutdown(context.Background())
		close(done)
	}()
	// Wait for the drain to begin.
	for deadline := time.Now().Add(5 * time.Second); !p.Draining(); {
		if time.Now().After(deadline) {
			t.Fatal("pool never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}
	if _, err := p.Complete("x"); !errors.Is(err, ErrDraining) {
		t.Fatalf("Complete during drain: %v, want ErrDraining", err)
	}
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); !errors.Is(err, ErrShutdown) {
		t.Fatal("ErrDraining must keep matching ErrShutdown")
	}
	close(block)
	<-done
	if !p.Draining() {
		t.Error("drained pool not reported as draining")
	}
}

// The jobs.run fault point injects inside the recovery envelope: an
// injected error is transient (retried), an injected panic is isolated.
func TestJobsRunFaultPoint(t *testing.T) {
	t.Cleanup(faults.Reset)
	if err := faults.P("jobs.run").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	p := New(1, 1, WithRetry(1, time.Millisecond))
	defer p.Shutdown(context.Background())
	var ran atomic.Int32
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		ran.Add(1)
		return nil, nil
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed || !strings.Contains(snap.Err, "injected") {
		t.Fatalf("snap: %+v", snap)
	}
	if ran.Load() != 0 {
		t.Fatal("fault fired but the job function still ran")
	}
	if s := p.Stats(); s.Retries != 1 {
		t.Fatalf("injected errors must be retried as transient: %+v", s)
	}
	if got := faults.P("jobs.run").Fired(); got != 2 { // initial attempt + 1 retry
		t.Fatalf("fired %d, want 2", got)
	}

	faults.Reset()
	if err := faults.P("jobs.run").Arm(faults.Injection{Mode: faults.ModePanic}); err != nil {
		t.Fatal(err)
	}
	id2, _ := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0)
	snap2, _ := p.Wait(context.Background(), id2)
	if snap2.State != StateFailed || !strings.Contains(snap2.Err, "panicked") {
		t.Fatalf("snap: %+v", snap2)
	}
	faults.Reset()
	// Worker survived the injected panic.
	id3, _ := p.Submit(func(ctx context.Context) (any, error) { return 7, nil }, 0)
	if snap3, _ := p.Wait(context.Background(), id3); snap3.State != StateDone {
		t.Fatalf("worker dead after injected panic: %+v", snap3)
	}
}

func TestRunSuccess(t *testing.T) {
	p := New(2, 4)
	defer p.Shutdown(context.Background())
	out, err := p.Run(context.Background(), func(ctx context.Context) (any, error) { return "ok", nil }, 0)
	if err != nil || out.(string) != "ok" {
		t.Fatalf("Run = %v, %v", out, err)
	}
}

func TestRunFailedJob(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	_, err := p.Run(context.Background(), func(ctx context.Context) (any, error) {
		return nil, errors.New("deterministic boom")
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "deterministic boom") {
		t.Fatalf("Run error = %v, want the job's own failure", err)
	}
}

func TestRunBackpressureAbsorbsQueueFull(t *testing.T) {
	// 1 worker, queue depth 1: submissions beyond the second would get
	// ErrQueueFull from Submit; Run must absorb that by waiting.
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	release := make(chan struct{})
	p.Submit(func(ctx context.Context) (any, error) { <-release; return nil, nil }, 0)
	p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0)

	done := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background(), func(ctx context.Context) (any, error) { return nil, nil }, 0)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Run returned %v before the queue had room", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Run after backpressure: %v", err)
	}
}

func TestRunCtxCancelWhileQueued(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	p.Submit(func(ctx context.Context) (any, error) { <-release; return nil, nil }, 0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx, func(ctx context.Context) (any, error) { return nil, nil }, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestWithContextWrap(t *testing.T) {
	type wrapKey struct{}
	p := New(1, 4, WithContextWrap(func(ctx context.Context) context.Context {
		return context.WithValue(ctx, wrapKey{}, 42)
	}))
	defer p.Shutdown(context.Background())
	out, err := p.Run(context.Background(), func(ctx context.Context) (any, error) {
		return ctx.Value(wrapKey{}), nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Fatalf("job context value = %v, want 42 (wrap not applied)", out)
	}
}
