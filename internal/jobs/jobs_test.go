package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsToCompletion(t *testing.T) {
	p := New(2, 4)
	defer p.Shutdown(context.Background())
	id, err := p.Submit(func(ctx context.Context) (any, error) { return 42, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result.(int) != 42 {
		t.Fatalf("snap: %+v", snap)
	}
	if snap.Started.IsZero() || snap.Finished.Before(snap.Started) {
		t.Fatalf("timestamps not monotone: %+v", snap)
	}
}

func TestSubmitFailure(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	}, 0)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateFailed || snap.Err != "boom" {
		t.Fatalf("snap: %+v", snap)
	}
	if s := p.Stats(); s.Failed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestQueueFull(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker…
	p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}, 0)
	<-started
	// …fill the single queue slot…
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	// …and the third must be rejected with back-pressure.
	if _, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if s := p.Stats(); s.Rejected != 1 {
		t.Fatalf("stats: %+v", s)
	}
	close(block)
}

func TestCancelRunning(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	started := make(chan struct{})
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, 0)
	<-started
	if err := p.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled", snap.State)
	}
}

func TestCancelQueued(t *testing.T) {
	p := New(1, 2)
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Bool
	p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}, 0)
	<-started
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	}, 0)
	if err := p.Cancel(id); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Get(id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled (immediately, while queued)", snap.State)
	}
	close(block)
	p.Shutdown(context.Background())
	if ran.Load() {
		t.Fatal("canceled queued job must never run")
	}
}

func TestJobTimeout(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, 10*time.Millisecond)
	snap, _ := p.Wait(context.Background(), id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled on deadline", snap.State)
	}
}

func TestCompleteRegistersTerminalJob(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	id, err := p.Complete("cached")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result.(string) != "cached" {
		t.Fatalf("snap: %+v", snap)
	}
	// Wait on an already-done job returns immediately.
	if _, err := p.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrains(t *testing.T) {
	p := New(1, 4)
	var finished atomic.Int32
	slow := func(ctx context.Context) (any, error) {
		time.Sleep(20 * time.Millisecond)
		finished.Add(1)
		return nil, nil
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Submit(slow, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := finished.Load(); got != 3 {
		t.Fatalf("%d jobs finished, want 3 (drain must complete queued work)", got)
	}
	if _, err := p.Submit(slow, 0); !errors.Is(err, ErrShutdown) {
		t.Fatalf("got %v, want ErrShutdown", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	p := New(1, 1)
	started := make(chan struct{})
	id, _ := p.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // only a cancellation lets this job end
		return nil, ctx.Err()
	}, 0)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	snap, _ := p.Get(id)
	if snap.State != StateCanceled {
		t.Fatalf("state %s, want canceled after forced shutdown", snap.State)
	}
}

func TestGetUnknown(t *testing.T) {
	p := New(1, 1)
	defer p.Shutdown(context.Background())
	if _, err := p.Get("j-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if err := p.Cancel("j-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}
