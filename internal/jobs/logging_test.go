package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// syncBuffer serializes writes: the pool's workers and the submitter
// log concurrently through one handler.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Every lifecycle transition must emit one structured event carrying
// the job ID — the contract docs/OBSERVABILITY.md documents.
func TestLifecycleLogEvents(t *testing.T) {
	var buf syncBuffer
	p := New(1, 4, WithLogger(slog.New(slog.NewJSONHandler(&buf, nil))))

	id, err := p.Submit(func(ctx context.Context) (any, error) { return 1, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	badID, err := p.Submit(func(ctx context.Context) (any, error) {
		return nil, fmt.Errorf("boom")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(context.Background(), badID); err != nil {
		t.Fatal(err)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	type event struct {
		Msg   string `json:"msg"`
		JobID string `json:"job_id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	seen := map[string]bool{} // "msg/job_id/state"
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		seen[ev.Msg+"/"+ev.JobID+"/"+ev.State] = true
		if ev.Msg == "job finished" && ev.JobID == badID && ev.Error == "" {
			t.Error("failed job's finish event carries no error attr")
		}
	}
	for _, want := range []string{
		"job enqueued/" + id + "/",
		"job started/" + id + "/",
		"job finished/" + id + "/done",
		"job finished/" + badID + "/failed",
		"pool draining//",
		"pool drained//",
	} {
		if !seen[want] {
			t.Errorf("missing lifecycle event %q in:\n%s", want, buf.String())
		}
	}
}

// A logger-less pool must not crash (nop logger path).
func TestNoLoggerIsSilent(t *testing.T) {
	p := New(1, 1)
	id, err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
