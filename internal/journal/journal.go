// Package journal is mapsd's per-sweep write-ahead log: the layer
// that lets a sweep survive the coordinator that scheduled it. Every
// admitted sweep appends an admission record (its wire spec plus a
// canonical grid hash), one record per completed point (canonical
// config hash → result key, worker attribution), and a terminal
// status record to an append-only file under the journal directory.
// On the next startup the daemon replays intact journals and resumes
// every unfinished sweep with its completed points pre-marked — the
// result store supplies their payloads, so nothing re-simulates.
//
// The on-disk unit is a framed record: a 4-byte little-endian payload
// length, a 4-byte little-endian CRC-32 (IEEE) of the payload, then
// the payload itself (one JSON Record). The discipline mirrors the
// result store's envelope handling (DESIGN.md §7 and §8): a record
// cut short at end of file is a torn tail — the crash interrupted an
// append — and is truncated away, keeping everything before it; a
// checksum or structural failure anywhere else means the file cannot
// be trusted and the whole journal is quarantined, never silently
// repaired and never fatal to startup.
//
// Appends degrade rather than block: a failed append (disk error, or
// the journal.append fault point) is counted and dropped, and the
// sweep keeps running — journal loss costs recovery fidelity after a
// crash, not availability before one.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/obs"
)

// Fault points the journal exposes to the chaos suite: append fires
// on every record append (an injected error drops the record, counted
// in DroppedAppends — the sweep proceeds unjournaled); replay fires
// once per journal file during Replay (an injected error quarantines
// that file, as if it were corrupt — startup never crashes).
const (
	FaultAppend = "journal.append"
	FaultReplay = "journal.replay"
)

var (
	faultAppend = faults.P(FaultAppend)
	faultReplay = faults.P(FaultReplay)
)

// MaxRecordBytes caps one record's payload. A framed length above it
// is structural corruption (quarantine), not a big record — it also
// bounds the allocation a hostile or scrambled file can induce.
const MaxRecordBytes = 8 << 20

// headerSize frames every record: 4 bytes payload length, 4 bytes
// CRC-32 (IEEE) of the payload, both little-endian.
const headerSize = 8

// Record types.
const (
	// TypeAdmit is the first record of every journal: the sweep's
	// admission.
	TypeAdmit = "admit"
	// TypePoint records one completed grid point.
	TypePoint = "point"
	// TypeStatus records the sweep's terminal state.
	TypeStatus = "status"
)

// ErrCorrupt is the sentinel wrapped by every decode failure that
// means "these bytes are not a valid record": a checksum mismatch,
// malformed JSON, an absurd framed length, or an unknown record
// shape. Replay quarantines the whole file on it.
var ErrCorrupt = errors.New("journal: corrupt record")

// ErrTorn is the sentinel for a record cut short at end of file — the
// signature of a crash mid-append. Replay truncates the file back to
// the last intact record on it.
var ErrTorn = errors.New("journal: torn record")

// ErrClosed is returned by appends to a Writer that was already
// finished or closed.
var ErrClosed = errors.New("journal: writer closed")

// corrupt wraps a detail message in the ErrCorrupt sentinel.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Admit is a sweep's admission record: everything needed to rebuild
// its coordinator after a restart.
type Admit struct {
	// ID is the sweep's stable identifier; it doubles as the journal
	// filename stem, so it must be filesystem-safe (ValidID).
	ID string `json:"id"`
	// Created is the original admission time, preserved across
	// restarts so status responses stay truthful.
	Created time.Time `json:"created"`
	// Total is the expanded grid size at admission.
	Total int `json:"total"`
	// GridHash is a canonical hash over the expanded grid's per-point
	// content addresses. Replay recomputes it from Spec; a mismatch
	// means expansion semantics drifted between builds and the journal
	// is quarantined rather than resumed against the wrong grid.
	GridHash string `json:"grid_hash"`
	// Spec is the sweep's wire request, opaque to the journal — the
	// server re-decodes it on replay.
	Spec json.RawMessage `json:"spec"`
}

// Point records one completed grid point.
type Point struct {
	// Index is the point's position in grid order.
	Index int `json:"index"`
	// Key is the point's canonical content address in the result
	// store, where its payload survives the process.
	Key string `json:"key,omitempty"`
	// Worker names the fleet worker that executed the point (empty
	// for cached points).
	Worker string `json:"worker,omitempty"`
	// Cached marks a point served from the result store without
	// simulating.
	Cached bool `json:"cached,omitempty"`
}

// Status is a sweep's terminal record.
type Status struct {
	// State is the terminal state: done, failed, or canceled.
	State string `json:"state"`
	// Error carries the failure message for failed/canceled sweeps.
	Error string `json:"error,omitempty"`
}

// Record is one journal entry: Type selects which body is set.
type Record struct {
	// Type is TypeAdmit, TypePoint, or TypeStatus.
	Type string `json:"type"`
	// Admit is set for TypeAdmit records.
	Admit *Admit `json:"admit,omitempty"`
	// Point is set for TypePoint records.
	Point *Point `json:"point,omitempty"`
	// Status is set for TypeStatus records.
	Status *Status `json:"status,omitempty"`
}

// validate checks that the record's type matches its body — the
// structural half of decode validation.
func (r Record) validate() error {
	switch r.Type {
	case TypeAdmit:
		if r.Admit == nil {
			return corrupt("admit record without admit body")
		}
	case TypePoint:
		if r.Point == nil {
			return corrupt("point record without point body")
		}
	case TypeStatus:
		if r.Status == nil {
			return corrupt("status record without status body")
		}
	default:
		return corrupt("unknown record type %q", r.Type)
	}
	return nil
}

// EncodeRecord frames rec for appending: length, CRC-32, JSON payload.
func EncodeRecord(rec Record) ([]byte, error) {
	if err := rec.validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("journal: record payload %d bytes exceeds %d", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// DecodeRecord parses one framed record from the front of data and
// returns it with the byte count consumed. Incomplete frames (the
// data ends inside the header or payload) return ErrTorn; checksum,
// JSON, length, and structural failures return ErrCorrupt.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < headerSize {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTorn, len(data), headerSize)
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n == 0 || n > MaxRecordBytes {
		return Record{}, 0, corrupt("framed length %d", n)
	}
	if len(data) < headerSize+int(n) {
		return Record{}, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTorn, len(data)-headerSize, n)
	}
	payload := data[headerSize : headerSize+int(n)]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, corrupt("checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, corrupt("bad JSON: %v", err)
	}
	if err := rec.validate(); err != nil {
		return Record{}, 0, err
	}
	return rec, headerSize + int(n), nil
}

// ValidID reports whether id is a filesystem-safe journal name: ASCII
// letters, digits, '-', '_', '.', not starting with a dot, at most
// 128 bytes. Everything that maps an ID to a path checks this first,
// so a hostile ID can never escape the journal directory.
func ValidID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Sync is the journal's fsync policy.
type Sync int

// Fsync policies. Admission and terminal-status records are synced
// under SyncAlways and SyncInterval alike (they are rare and carry
// the most recovery value); SyncNever never syncs anything.
const (
	// SyncAlways fsyncs after every record — the default; a completed
	// point acknowledged to the journal survives an immediate SIGKILL.
	SyncAlways Sync = iota
	// SyncInterval fsyncs point records at most once per
	// Options.SyncInterval, trading the tail of recent completions
	// for append throughput.
	SyncInterval
	// SyncNever leaves flushing entirely to the OS.
	SyncNever
)

// ParseSync parses a -journal-fsync flag value: "always", "interval",
// or "never".
func ParseSync(s string) (Sync, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or never)", s)
}

// String renders the policy as its flag spelling.
func (s Sync) String() string {
	switch s {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "always"
}

// Options configures Open.
type Options struct {
	// Dir is the journal directory; it is created if absent.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync Sync
	// SyncInterval paces point-record fsyncs under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// Logger receives replay, truncation, and quarantine events; nil
	// means silent.
	Logger *slog.Logger
}

// Stats are the journal's cumulative counters.
type Stats struct {
	// Appends counts records durably appended; DroppedAppends counts
	// records lost to write errors or the journal.append fault — each
	// costs recovery fidelity, never availability.
	Appends        uint64 `json:"appends"`
	DroppedAppends uint64 `json:"dropped_appends"`
	// ReplayedSweeps and RecoveredPoints count what Replay handed
	// back: journals decoded intact and completed points inside them.
	ReplayedSweeps  uint64 `json:"replayed_sweeps"`
	RecoveredPoints uint64 `json:"recovered_points"`
	// TruncatedTails counts torn final records healed in place;
	// Quarantined counts whole journals moved aside as corrupt.
	TruncatedTails uint64 `json:"truncated_tails"`
	Quarantined    uint64 `json:"quarantined"`
}

// Dir is an open journal directory: the factory for per-sweep Writers
// and the replay surface startup recovery drives.
type Dir struct {
	dir       string
	sync      Sync
	syncEvery time.Duration
	log       *slog.Logger

	appends         atomic.Uint64
	droppedAppends  atomic.Uint64
	replayedSweeps  atomic.Uint64
	recoveredPoints atomic.Uint64
	truncatedTails  atomic.Uint64
	quarantined     atomic.Uint64
}

// Open creates (if needed) and opens a journal directory.
func Open(o Options) (*Dir, error) {
	if o.Dir == "" {
		return nil, errors.New("journal: empty directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	log := o.Logger
	if log == nil {
		log = obs.Nop()
	}
	every := o.SyncInterval
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &Dir{dir: o.Dir, sync: o.Sync, syncEvery: every, log: log}, nil
}

// Path returns the journal directory.
func (d *Dir) Path() string { return d.dir }

// Stats returns the cumulative journal counters.
func (d *Dir) Stats() Stats {
	return Stats{
		Appends:         d.appends.Load(),
		DroppedAppends:  d.droppedAppends.Load(),
		ReplayedSweeps:  d.replayedSweeps.Load(),
		RecoveredPoints: d.recoveredPoints.Load(),
		TruncatedTails:  d.truncatedTails.Load(),
		Quarantined:     d.quarantined.Load(),
	}
}

// walPath maps a sweep ID to its journal file.
func (d *Dir) walPath(id string) string {
	return filepath.Join(d.dir, id+".wal")
}

// Writer appends one sweep's records. Methods are safe for concurrent
// use; point records are deduplicated by grid index, so re-delivery
// of an already-journaled point (a resumed sweep re-serving recovered
// points from the store) is idempotent.
type Writer struct {
	d    *Dir
	id   string
	path string

	mu       sync.Mutex
	f        *os.File
	seen     map[int]bool
	lastSync time.Time
	closed   bool
}

// Create opens a fresh journal for the sweep described by a, writing
// and syncing its admission record. An existing journal under the
// same ID is truncated — the caller owns ID uniqueness.
func (d *Dir) Create(a Admit) (*Writer, error) {
	if !ValidID(a.ID) {
		return nil, fmt.Errorf("journal: invalid sweep id %q", a.ID)
	}
	path := d.walPath(a.ID)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{d: d, id: a.ID, path: path, f: f, seen: make(map[int]bool)}
	if err := w.append(Record{Type: TypeAdmit, Admit: &a}, true); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// append frames and writes one record, syncing per policy (forceSync
// overrides for admission/status records).
func (w *Writer) append(rec Record, forceSync bool) error {
	buf, err := EncodeRecord(rec)
	if err != nil {
		w.d.droppedAppends.Add(1)
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(buf, forceSync)
}

// appendLocked writes one framed record; callers hold w.mu.
func (w *Writer) appendLocked(buf []byte, forceSync bool) error {
	if w.closed {
		return ErrClosed
	}
	if err := faultAppend.Hit(); err != nil {
		w.d.droppedAppends.Add(1)
		return fmt.Errorf("journal: append: %w", err)
	}
	if _, err := w.f.Write(buf); err != nil {
		// The file may now hold a torn tail; replay heals it.
		w.d.droppedAppends.Add(1)
		return fmt.Errorf("journal: append: %w", err)
	}
	w.d.appends.Add(1)
	switch {
	case w.d.sync == SyncNever:
	case w.d.sync == SyncAlways || forceSync:
		w.f.Sync()
		w.lastSync = time.Now()
	case time.Since(w.lastSync) >= w.d.syncEvery:
		w.f.Sync()
		w.lastSync = time.Now()
	}
	return nil
}

// Point appends one completed-point record. A point already journaled
// under the same index is a no-op. Errors mean the record was dropped
// (counted); the sweep should proceed regardless.
func (w *Writer) Point(p Point) error {
	buf, err := EncodeRecord(Record{Type: TypePoint, Point: &p})
	if err != nil {
		w.d.droppedAppends.Add(1)
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.seen[p.Index] {
		return nil
	}
	if err := w.appendLocked(buf, false); err != nil {
		return err
	}
	w.seen[p.Index] = true
	return nil
}

// Finish appends the terminal status record (always synced) and
// closes the file. The journal stays on disk — startup removes
// terminal journals, and registry eviction removes them earlier.
func (w *Writer) Finish(st Status) error {
	err := w.append(Record{Type: TypeStatus, Status: &st}, true)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close closes the file without a status record, leaving the sweep
// unfinished on disk — the graceful-shutdown path, so the next start
// resumes it exactly like a crash would.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.d.sync != SyncNever {
		w.f.Sync()
	}
	return w.f.Close()
}

// Sweep is one journal's replayed content.
type Sweep struct {
	// Admit is the admission record.
	Admit Admit
	// Points are the completed points, deduplicated by index,
	// ascending.
	Points []Point
	// Status is the terminal record, nil while the sweep was still
	// running when the process stopped — the resumable case.
	Status *Status
	// Truncated reports that a torn tail was cut from the file.
	Truncated bool
}

// Replay scans every *.wal in the directory: torn tails are truncated
// in place, corrupt files quarantined, and each intact journal
// returned in filename order. Replay never fails the whole startup
// for one bad file; the returned error covers only directory access.
func (d *Dir) Replay() ([]*Sweep, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var sweeps []*Sweep
	for _, name := range names {
		path := filepath.Join(d.dir, name)
		if err := faultReplay.Hit(); err != nil {
			d.quarantine(path, err)
			continue
		}
		sw, err := d.replayFile(path, strings.TrimSuffix(name, ".wal"))
		if err != nil {
			d.quarantine(path, err)
			continue
		}
		d.replayedSweeps.Add(1)
		d.recoveredPoints.Add(uint64(len(sw.Points)))
		sweeps = append(sweeps, sw)
	}
	return sweeps, nil
}

// replayFile decodes one journal. A torn tail truncates the file back
// to its intact prefix; any other failure is returned for quarantine.
func (d *Dir) replayFile(path, id string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	sw := &Sweep{}
	byIndex := make(map[int]Point)
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if errors.Is(err, ErrTorn) {
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return nil, fmt.Errorf("journal: truncate torn tail: %w", terr)
			}
			d.truncatedTails.Add(1)
			sw.Truncated = true
			d.log.Warn("journal torn tail truncated",
				"file", path, "kept_bytes", off, "cut_bytes", len(data)-off, "cause", err)
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Type {
		case TypeAdmit:
			if off != 0 {
				return nil, corrupt("admit record at offset %d", off)
			}
			if rec.Admit.ID != id {
				return nil, corrupt("admit id %q in journal %q", rec.Admit.ID, id)
			}
			sw.Admit = *rec.Admit
		case TypePoint:
			if off == 0 {
				return nil, corrupt("first record is %s, want admit", rec.Type)
			}
			byIndex[rec.Point.Index] = *rec.Point
		case TypeStatus:
			if off == 0 {
				return nil, corrupt("first record is %s, want admit", rec.Type)
			}
			st := *rec.Status
			sw.Status = &st
		}
		off += n
	}
	if sw.Admit.ID == "" {
		return nil, corrupt("no admission record")
	}
	idxs := make([]int, 0, len(byIndex))
	for i := range byIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		sw.Points = append(sw.Points, byIndex[i])
	}
	return sw, nil
}

// Resume compacts a replayed, unfinished sweep's journal — one admit
// record plus its deduplicated points, written to a temp file and
// atomically renamed over the original — and reopens it for appends
// with the recovered points pre-marked, so the resumed coordinator's
// re-deliveries are no-ops.
func (d *Dir) Resume(sw *Sweep) (*Writer, error) {
	if !ValidID(sw.Admit.ID) {
		return nil, fmt.Errorf("journal: invalid sweep id %q", sw.Admit.ID)
	}
	path := d.walPath(sw.Admit.ID)
	tmp, err := os.CreateTemp(d.dir, "wal-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	write := func() error {
		a := sw.Admit
		buf, err := EncodeRecord(Record{Type: TypeAdmit, Admit: &a})
		if err != nil {
			return err
		}
		for i := range sw.Points {
			p := sw.Points[i]
			rb, err := EncodeRecord(Record{Type: TypePoint, Point: &p})
			if err != nil {
				return err
			}
			buf = append(buf, rb...)
		}
		if _, err := tmp.Write(buf); err != nil {
			return err
		}
		if d.sync != SyncNever {
			tmp.Sync()
		}
		return nil
	}
	if err := write(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("journal: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: reopen: %w", err)
	}
	seen := make(map[int]bool, len(sw.Points))
	for _, p := range sw.Points {
		seen[p.Index] = true
	}
	return &Writer{d: d, id: sw.Admit.ID, path: path, f: f, seen: seen}, nil
}

// Remove deletes the sweep's journal file — called for terminal
// journals at startup and on registry eviction. A missing file is
// fine.
func (d *Dir) Remove(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("journal: invalid sweep id %q", id)
	}
	err := os.Remove(d.walPath(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Quarantine moves the sweep's journal into the quarantine
// subdirectory with a logged reason — for callers (the server's
// recovery) that detect semantic corruption the codec cannot, such as
// a grid-hash mismatch after a spec re-expansion.
func (d *Dir) Quarantine(id string, reason error) {
	if !ValidID(id) {
		return
	}
	d.quarantine(d.walPath(id), reason)
}

// quarantine moves path aside (or removes it when the move fails) and
// counts it, mirroring the store's corrupt-envelope discipline.
func (d *Dir) quarantine(path string, reason error) {
	qdir := filepath.Join(d.dir, "quarantine")
	dest := filepath.Join(qdir, filepath.Base(path))
	if err := os.MkdirAll(qdir, 0o755); err != nil || os.Rename(path, dest) != nil {
		os.Remove(path)
		dest = "(removed)"
	}
	d.quarantined.Add(1)
	d.log.Warn("journal quarantined", "file", path, "moved_to", dest, "cause", reason)
}
