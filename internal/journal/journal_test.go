package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
)

func testAdmit(id string, total int) Admit {
	return Admit{
		ID:       id,
		Created:  time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Total:    total,
		GridHash: "deadbeef",
		Spec:     json.RawMessage(`{"base":{}}`),
	}
}

func openDir(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := openDir(t)
	w, err := d.Create(testAdmit("s-00000001", 3))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pts := []Point{
		{Index: 2, Key: "k2", Worker: "pool"},
		{Index: 0, Key: "k0", Cached: true},
		{Index: 1, Key: "k1", Worker: "remote"},
	}
	for _, p := range pts {
		if err := w.Point(p); err != nil {
			t.Fatalf("Point(%d): %v", p.Index, err)
		}
	}
	// Re-delivery of an already-journaled index is an idempotent no-op.
	if err := w.Point(Point{Index: 1, Key: "other"}); err != nil {
		t.Fatalf("duplicate Point: %v", err)
	}
	if err := w.Finish(Status{State: "done"}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := w.Point(Point{Index: 9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Point after Finish = %v, want ErrClosed", err)
	}

	sweeps, err := d.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(sweeps) != 1 {
		t.Fatalf("Replay returned %d sweeps, want 1", len(sweeps))
	}
	sw := sweeps[0]
	if sw.Admit.ID != "s-00000001" || sw.Admit.Total != 3 || sw.Admit.GridHash != "deadbeef" {
		t.Fatalf("Admit = %+v", sw.Admit)
	}
	if sw.Status == nil || sw.Status.State != "done" {
		t.Fatalf("Status = %+v, want done", sw.Status)
	}
	if sw.Truncated {
		t.Fatal("Truncated = true for an intact journal")
	}
	if len(sw.Points) != 3 {
		t.Fatalf("Points = %+v, want 3 deduped", sw.Points)
	}
	for i, p := range sw.Points {
		if p.Index != i {
			t.Fatalf("Points not ascending: %+v", sw.Points)
		}
	}
	// The duplicate index-1 append was suppressed: the first key wins.
	if sw.Points[1].Key != "k1" {
		t.Fatalf("Points[1].Key = %q, want k1", sw.Points[1].Key)
	}
	st := d.Stats()
	if st.ReplayedSweeps != 1 || st.RecoveredPoints != 3 || st.Quarantined != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	d := openDir(t)
	w, err := d.Create(testAdmit("s-00000002", 4))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.Point(Point{Index: 0, Key: "k0"}); err != nil {
		t.Fatalf("Point: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(d.Path(), "s-00000002.wal")
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a valid header promising more
	// payload than the file holds.
	tail := make([]byte, headerSize+3)
	binary.LittleEndian.PutUint32(tail[0:4], 64)
	if err := os.WriteFile(path, append(append([]byte{}, intact...), tail...), 0o644); err != nil {
		t.Fatal(err)
	}

	sweeps, err := d.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(sweeps) != 1 {
		t.Fatalf("Replay returned %d sweeps, want 1", len(sweeps))
	}
	sw := sweeps[0]
	if !sw.Truncated {
		t.Fatal("Truncated = false, want torn tail cut")
	}
	if sw.Status != nil || len(sw.Points) != 1 || sw.Points[0].Index != 0 {
		t.Fatalf("replayed sweep = %+v", sw)
	}
	if st := d.Stats(); st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
	// The file was healed in place: a second replay sees no tear.
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(healed) != len(intact) {
		t.Fatalf("healed file is %d bytes, want %d", len(healed), len(intact))
	}
}

func TestReplayQuarantinesCorruptJournal(t *testing.T) {
	corruptions := map[string]func(data []byte) []byte{
		"checksum flip": func(data []byte) []byte {
			out := append([]byte{}, data...)
			out[headerSize] ^= 0xff // flip a payload byte mid-file
			return out
		},
		"absurd length": func(data []byte) []byte {
			out := append([]byte{}, data...)
			binary.LittleEndian.PutUint32(out[0:4], MaxRecordBytes+1)
			return out
		},
		"no admission first": func(data []byte) []byte {
			rec, _ := EncodeRecord(Record{Type: TypePoint, Point: &Point{Index: 0}})
			return rec
		},
	}
	for name, mangle := range corruptions {
		t.Run(name, func(t *testing.T) {
			d := openDir(t)
			w, err := d.Create(testAdmit("s-00000003", 2))
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			if err := w.Point(Point{Index: 0, Key: "k0"}); err != nil {
				t.Fatalf("Point: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			path := filepath.Join(d.Path(), "s-00000003.wal")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			sweeps, err := d.Replay()
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if len(sweeps) != 0 {
				t.Fatalf("Replay returned %d sweeps, want 0 (quarantined)", len(sweeps))
			}
			if st := d.Stats(); st.Quarantined != 1 {
				t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt journal still at %s", path)
			}
			if _, err := os.Stat(filepath.Join(d.Path(), "quarantine", "s-00000003.wal")); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
		})
	}
}

func TestResumeCompactsAndDedupes(t *testing.T) {
	d := openDir(t)
	w, err := d.Create(testAdmit("s-00000004", 5))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Point(Point{Index: i, Key: "k"}); err != nil {
			t.Fatalf("Point: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sweeps, err := d.Replay()
	if err != nil || len(sweeps) != 1 {
		t.Fatalf("Replay = %v, %v", sweeps, err)
	}
	w2, err := d.Resume(sweeps[0])
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// Recovered indices are pre-marked: appending them again is a no-op.
	for i := 0; i < 3; i++ {
		if err := w2.Point(Point{Index: i, Key: "dup"}); err != nil {
			t.Fatalf("recovered Point: %v", err)
		}
	}
	if err := w2.Point(Point{Index: 3, Key: "k3"}); err != nil {
		t.Fatalf("new Point: %v", err)
	}
	if err := w2.Finish(Status{State: "done"}); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	sweeps, err = d.Replay()
	if err != nil || len(sweeps) != 1 {
		t.Fatalf("second Replay = %v, %v", sweeps, err)
	}
	sw := sweeps[0]
	if len(sw.Points) != 4 {
		t.Fatalf("Points after resume = %+v, want 4", sw.Points)
	}
	if sw.Points[0].Key != "k" || sw.Points[3].Key != "k3" {
		t.Fatalf("resume rewrote recovered points: %+v", sw.Points)
	}
	if sw.Status == nil || sw.Status.State != "done" {
		t.Fatalf("Status = %+v", sw.Status)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	good, err := EncodeRecord(Record{Type: TypeStatus, Status: &Status{State: "done"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		data []byte
		want error
	}{
		"short header":   {good[:headerSize-1], ErrTorn},
		"short payload":  {good[:len(good)-1], ErrTorn},
		"zero length":    {make([]byte, headerSize), ErrCorrupt},
		"bad checksum":   {append(append([]byte{}, good[:headerSize]...), make([]byte, len(good)-headerSize)...), ErrCorrupt},
		"unknown type":   {mustEncodeRaw(t, `{"type":"mystery"}`), ErrCorrupt},
		"typeless admit": {mustEncodeRaw(t, `{"type":"admit"}`), ErrCorrupt},
		"bad json":       {mustEncodeRaw(t, `{"type":`), ErrCorrupt},
	}
	for name, tc := range cases {
		if _, _, err := DecodeRecord(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeRecord = %v, want %v", name, err, tc.want)
		}
	}
	rec, n, err := DecodeRecord(good)
	if err != nil || n != len(good) || rec.Type != TypeStatus {
		t.Fatalf("DecodeRecord(good) = %+v, %d, %v", rec, n, err)
	}
}

// mustEncodeRaw frames an arbitrary payload with a correct checksum,
// for exercising post-checksum decode failures.
func mustEncodeRaw(t *testing.T, payload string) []byte {
	t.Helper()
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE([]byte(payload)))
	copy(buf[headerSize:], payload)
	return buf
}

func TestValidID(t *testing.T) {
	valid := []string{"s-00000001", "a_b.c", "X9"}
	invalid := []string{"", ".hidden", "a/b", "a b", "..", "s\x00", string(make([]byte, 129))}
	for _, id := range valid {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false", id)
		}
	}
	for _, id := range invalid {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true", id)
		}
	}
}

func TestParseSync(t *testing.T) {
	for want, name := range map[Sync]string{SyncAlways: "always", SyncInterval: "interval", SyncNever: "never"} {
		got, err := ParseSync(name)
		if err != nil || got != want {
			t.Errorf("ParseSync(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseSync("sometimes"); err == nil {
		t.Error("ParseSync accepted an unknown policy")
	}
}

// TestChaosAppendFault drives concurrent Point appends through an
// armed journal.append point under -race: dropped appends are counted,
// the writer survives, and everything that did land replays intact.
func TestChaosAppendFault(t *testing.T) {
	t.Cleanup(faults.Reset)
	faults.Seed(42)
	if err := faults.P(FaultAppend).Arm(faults.Injection{Mode: faults.ModeErr, Rate: 0.5}); err != nil {
		t.Fatal(err)
	}
	d := openDir(t)
	w, err := d.Create(testAdmit("s-00000005", 64))
	if err != nil {
		// The admission append itself can draw the fault; that is the
		// degraded-journal path the server logs and tolerates.
		t.Skipf("admission drew the fault: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				w.Point(Point{Index: g*16 + i, Key: "k"}) // errors are drops, by design
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	faults.Reset()

	st := d.Stats()
	if st.DroppedAppends == 0 {
		t.Fatal("chaos run dropped no appends")
	}
	sweeps, err := d.Replay()
	if err != nil || len(sweeps) != 1 {
		t.Fatalf("Replay = %v, %v", sweeps, err)
	}
	seen := make(map[int]bool)
	for _, p := range sweeps[0].Points {
		if p.Index < 0 || p.Index >= 64 || seen[p.Index] {
			t.Fatalf("bad replayed point %+v", p)
		}
		seen[p.Index] = true
	}
}

// TestChaosReplayFault arms journal.replay: the file is quarantined as
// if corrupt, and Replay itself never fails.
func TestChaosReplayFault(t *testing.T) {
	t.Cleanup(faults.Reset)
	d := openDir(t)
	w, err := d.Create(testAdmit("s-00000006", 1))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := faults.P(FaultReplay).Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	sweeps, err := d.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(sweeps) != 0 {
		t.Fatalf("Replay returned %d sweeps, want 0", len(sweeps))
	}
	if st := d.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}
