package journal

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzDecodeJournalRecord throws arbitrary bytes at the record decoder
// — the bytes a crash-scrambled journal could hold. The invariant is
// total robustness: DecodeRecord never panics, consumed stays inside
// the input, and anything it accepts satisfies the frame contract
// (type-matched body, re-encodable to an identical frame).
func FuzzDecodeJournalRecord(f *testing.F) {
	seed := func(rec Record) {
		buf, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])
	}
	seed(Record{Type: TypeAdmit, Admit: &Admit{
		ID: "s-00000001", Created: time.Unix(0, 0).UTC(), Total: 4,
		GridHash: "abc", Spec: json.RawMessage(`{}`),
	}})
	seed(Record{Type: TypePoint, Point: &Point{Index: 3, Key: "k", Worker: "w", Cached: true}})
	seed(Record{Type: TypeStatus, Status: &Status{State: "done"}})
	f.Add([]byte(nil))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte(`{"type":"admit"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, consumed, err := DecodeRecord(data)
		if err != nil {
			if consumed != 0 {
				t.Fatalf("error path consumed %d bytes", consumed)
			}
			return
		}
		if consumed < headerSize || consumed > len(data) {
			t.Fatalf("consumed %d of %d input bytes", consumed, len(data))
		}
		if rec.validate() != nil {
			t.Fatalf("accepted invalid record %+v", rec)
		}
		// An accepted record must re-encode; the frame need not be
		// byte-identical (JSON field order is ours on the way out),
		// but it must decode back to an equivalent record.
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if _, _, err := DecodeRecord(buf); err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
	})
}
