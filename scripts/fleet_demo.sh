#!/bin/sh
# fleet_demo.sh — three-daemon fleet smoke test.
#
# Starts two worker mapsd daemons and one coordinator registered to
# both via -fleet, runs a small sweep through the coordinator, and
# prints the per-worker point attribution from the watch stream. The
# walkthrough in docs/FLEET.md is this script, narrated.
#
# Ports can be overridden: FLEET_DEMO_BASE_PORT=9000 make fleet-demo
set -eu

BASE_PORT="${FLEET_DEMO_BASE_PORT:-8761}"
COORD_PORT="$BASE_PORT"
W1_PORT=$((BASE_PORT + 1))
W2_PORT=$((BASE_PORT + 2))
BIN="$(mktemp -d)"

cleanup() {
    # Kill the whole trio; mapsd drains cleanly on SIGTERM.
    [ -n "${W1_PID:-}" ] && kill "$W1_PID" 2>/dev/null || true
    [ -n "${W2_PID:-}" ] && kill "$W2_PID" 2>/dev/null || true
    [ -n "${COORD_PID:-}" ] && kill "$COORD_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

echo "fleet-demo: building mapsd and maps..."
go build -o "$BIN/mapsd" ./cmd/mapsd
go build -o "$BIN/maps" ./cmd/maps

wait_ready() {
    url="$1"; name="$2"
    i=0
    while ! curl -sf "$url/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "fleet-demo: $name never became ready at $url" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "fleet-demo: $name ready at $url"
}

echo "fleet-demo: starting two workers..."
"$BIN/mapsd" -addr "127.0.0.1:$W1_PORT" -workers 2 &
W1_PID=$!
"$BIN/mapsd" -addr "127.0.0.1:$W2_PORT" -workers 2 &
W2_PID=$!
wait_ready "http://127.0.0.1:$W1_PORT" "worker 1"
wait_ready "http://127.0.0.1:$W2_PORT" "worker 2"

echo "fleet-demo: starting the coordinator..."
"$BIN/mapsd" -addr "127.0.0.1:$COORD_PORT" -workers 2 \
    -fleet "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT" \
    -fleet-inflight 2 -straggler-after 10s &
COORD_PID=$!
wait_ready "http://127.0.0.1:$COORD_PORT" "coordinator"

echo "fleet-demo: sweeping 2 benchmarks x 2 metadata-cache sizes x 2 content policies..."
"$BIN/maps" sweep -remote "http://127.0.0.1:$COORD_PORT" \
    -benchmarks canneal,libquantum \
    -meta 16KB,64KB -contents counters,all \
    -instructions 200000

echo "fleet-demo: coordinator fleet metrics:"
curl -sf "http://127.0.0.1:$COORD_PORT/metrics" | grep '^mapsd_fleet' || true

echo "fleet-demo: OK"
