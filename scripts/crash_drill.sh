#!/bin/sh
# crash_drill.sh — kill-and-recover drill for the sweep journal.
#
# Starts a journaled mapsd, submits a slow sweep, SIGKILLs the daemon
# mid-sweep, restarts it on the same -journal-dir/-store-dir, and
# verifies the sweep resumes under its original ID and completes with
# the already-finished points served from the store. The walkthrough
# in docs/ROBUSTNESS.md is this script, narrated.
#
# Port can be overridden: CRASH_DRILL_PORT=9000 make crash-drill
set -eu

PORT="${CRASH_DRILL_PORT:-8773}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "crash-drill: building mapsd..."
go build -o "$WORK/mapsd" ./cmd/mapsd

start_daemon() {
    "$WORK/mapsd" -addr "127.0.0.1:$PORT" -workers 1 \
        -journal-dir "$WORK/journal" -store-dir "$WORK/store" &
    PID=$!
    i=0
    while ! curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "crash-drill: daemon never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "crash-drill: starting a journaled daemon on :$PORT..."
start_daemon

echo "crash-drill: submitting a slow 8-point sweep..."
SUBMIT=$(curl -sf -X POST "$BASE/v1/sweeps" -H 'Content-Type: application/json' -d '{
    "base": {"instructions": 5000000, "speculation": true},
    "axes": {
        "benchmarks": ["fft", "canneal"],
        "meta": {"points": ["16KB", "32KB", "64KB", "128KB"]}
    }
}')
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "crash-drill: no sweep id in: $SUBMIT" >&2; exit 1; }
echo "crash-drill: sweep $ID admitted"

echo "crash-drill: waiting for at least 2 completed points..."
i=0
while :; do
    DONE=$(curl -sf "$BASE/v1/sweeps/$ID" | sed -n 's/.*"done": *\([0-9]*\).*/\1/p')
    [ "${DONE:-0}" -ge 2 ] && break
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "crash-drill: sweep made no progress" >&2
        exit 1
    fi
    sleep 0.1
done
echo "crash-drill: $DONE points done — waiting for the store to flush..."
i=0
while ! curl -sf "$BASE/metrics" | grep -q '^mapsd_store_pending_writes 0$'; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && break
    sleep 0.1
done

echo "crash-drill: SIGKILL (no drain, no goodbye)..."
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "crash-drill: restarting on the same journal and store..."
start_daemon
RECOVERED=$(curl -sf "$BASE/metrics" | sed -n 's/^mapsd_sweeps_recovered_total \([0-9]*\)$/\1/p')
if [ "${RECOVERED:-0}" -ne 1 ]; then
    echo "crash-drill: expected 1 recovered sweep, got ${RECOVERED:-0}" >&2
    exit 1
fi
echo "crash-drill: sweep $ID recovered — waiting for completion..."
i=0
while :; do
    STATUS=$(curl -sf "$BASE/v1/sweeps/$ID")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) echo "crash-drill: sweep ended $STATE: $STATUS" >&2; exit 1 ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "crash-drill: recovered sweep never finished" >&2
        exit 1
    fi
    sleep 0.1
done
DEDUPED=$(printf '%s' "$STATUS" | sed -n 's/.*"deduped": *\([0-9]*\).*/\1/p')
echo "crash-drill: sweep $ID completed; $DEDUPED points served from the store, none re-simulated"
curl -sf "$BASE/metrics" | grep '^mapsd_journal\|^mapsd_sweeps_recovered' || true

echo "crash-drill: OK"
