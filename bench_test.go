package mapsim

import (
	"fmt"
	"testing"

	"github.com/maps-sim/mapsim/internal/experiments"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/reuse"
)

// Benchmarks in this file regenerate the paper's tables and figures
// (one benchmark per exhibit, scaled down so `go test -bench=.`
// completes in minutes) plus micro-benchmarks for the hot paths.
// The full-scale sweeps are `cmd/maps <experiment>`.

// benchOpt keeps the per-iteration sweeps small.
var benchOpt = experiments.Options{Instructions: 120_000, Parallelism: 4}

// BenchmarkTable1Config regenerates Table I (configuration dump).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Layout regenerates Table II from the layout math.
func BenchmarkTable2Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1ContentPolicies regenerates Figure 1: metadata MPKI
// under counters-only, counters+hashes, and all-types caching.
func BenchmarkFig1ContentPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			small := experiments.MetaSizes[0]
			b.ReportMetric(r.MPKI["canneal"][AllTypes][small], "canneal-all-MPKI@16KB")
			b.ReportMetric(r.MPKI["canneal"][CountersOnly][small], "canneal-ctr-MPKI@16KB")
		}
	}
}

// BenchmarkFig2SizeSweep regenerates Figure 2: normalized ED^2 over
// LLC x metadata-cache budgets (restricted benchmark set per
// iteration).
func BenchmarkFig2SizeSweep(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"canneal", "libquantum"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Norm["average"][2<<20][64<<10], "avg-ED2@2MB/64KB")
		}
	}
}

// BenchmarkFig3ReuseCDF regenerates Figure 3: per-type reuse CDFs.
func BenchmarkFig3ReuseCDF(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"libquantum", "canneal"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.CDF["libquantum"][KindTree][1], "lq-tree-CDF@4KB")
		}
	}
}

// BenchmarkFig4Bimodal regenerates Figure 4: reuse-distance classes.
func BenchmarkFig4Bimodal(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"libquantum", "fft"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Bimodality["libquantum"], "lq-bimodality")
		}
	}
}

// BenchmarkFig5RequestTypes regenerates Figure 5: reuse CDFs by
// request-type transition for fft and leslie3d.
func BenchmarkFig5RequestTypes(b *testing.B) {
	opt := benchOpt
	opt.Instructions = 1_500_000 // writebacks require a full LLC
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Counts["fft"][KindHash][reuse.WtoW]), "fft-hash-WtoW")
		}
	}
}

// BenchmarkFig6EvictionPolicies regenerates Figure 6: pseudo-LRU vs
// EVA vs MIN vs iterMIN on a 64 KB metadata cache.
func BenchmarkFig6EvictionPolicies(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"libquantum", "fft"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MPKI["fft"]["plru"], "fft-plru-MPKI")
			b.ReportMetric(r.MPKI["fft"]["min"], "fft-min-MPKI")
		}
	}
}

// BenchmarkFig7Partitioning regenerates Figure 7: partitioning
// schemes and their ED^2 overheads.
func BenchmarkFig7Partitioning(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"libquantum", "canneal"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Overhead["canneal"]["none"], "canneal-ED2-none")
			b.ReportMetric(r.Overhead["canneal"]["best-static"], "canneal-ED2-best")
		}
	}
}

// --- micro-benchmarks on the hot paths ---

// BenchmarkSimulationThroughput measures end-to-end simulated
// instructions per second through the full secure stack.
func BenchmarkSimulationThroughput(b *testing.B) {
	const instr = 200_000
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Benchmark:    "canneal",
			Instructions: instr,
			Secure:       true,
			Speculation:  true,
			Meta:         &MetaConfig{Size: 64 << 10, Ways: 8},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instr*b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkFunctionalStoreLoad measures the functional (real crypto)
// path.
func BenchmarkFunctionalStoreLoad(b *testing.B) {
	sm, err := NewSecureMemory(PoisonIvy, 4<<20, make([]byte, 16), []byte("k"))
	if err != nil {
		b.Fatal(err)
	}
	var blk Block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * 64
		if err := sm.Store(addr, &blk); err != nil {
			b.Fatal(err)
		}
		if err := sm.Load(addr, &blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackDistance measures the Fenwick-tree reuse analyzer.
func BenchmarkStackDistance(b *testing.B) {
	an := reuse.NewAnalyzer(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*2654435761) % (1 << 22)
		an.Record(addr&^63, memlayout.KindCounter, i%7 == 0)
	}
}

// BenchmarkLayoutMapping measures the address-map arithmetic.
func BenchmarkLayoutMapping(b *testing.B) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 1<<30)
	var sink uint64
	for i := 0; i < b.N; i++ {
		addr := uint64(i*4096) % layout.DataBytes()
		sink += layout.CounterAddr(addr) + layout.HashAddr(addr)
	}
	if sink == 42 {
		fmt.Println(sink)
	}
}

// --- benches for the extension experiments ---

// BenchmarkAblatePartialWrites regenerates the §IV-E partial-write
// ablation.
func BenchmarkAblatePartialWrites(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"lbm"}
	opt.Instructions = 1_200_000
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblatePartial(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			h := r.HashReadsPKI["lbm"]
			b.ReportMetric(h[0]-h[1], "lbm-hash-reads-saved/KI")
		}
	}
}

// BenchmarkCSOPTStudy regenerates the §V-B study (solve + replay +
// explosion).
func BenchmarkCSOPTStudy(b *testing.B) {
	opt := benchOpt
	for i := 0; i < b.N; i++ {
		r, err := experiments.CSOPT(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.PeakStates), "peak-states")
			b.ReportMetric(r.DivergedShare*100, "diverged-%")
		}
	}
}

// BenchmarkSpecWindow regenerates the speculation-window sweep.
func BenchmarkSpecWindow(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"canneal"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.SpecWindow(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Slowdown["canneal"][100][0], "canneal-slowdown@100cyc-nocache")
		}
	}
}

// BenchmarkTreeStretch regenerates the §IV-C tree-stretch comparison.
func BenchmarkTreeStretch(b *testing.B) {
	opt := benchOpt
	opt.Benchmarks = []string{"canneal"}
	for i := 0; i < b.N; i++ {
		r, err := experiments.TreeStretch(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.TreeAccessesPKI["canneal"]["nocache"], "tree-req/KI-nocache")
			b.ReportMetric(r.TreeAccessesPKI["canneal"]["cached"], "tree-req/KI-cached")
		}
	}
}
