// Package mapsim reproduces MAPS — "Understanding Metadata Access
// Patterns in Secure Memory" (Lehman, Hilton, Lee; ISPASS 2018) — as
// a Go library: a secure-memory simulator with counter-mode
// encryption, Bonsai Merkle Tree integrity, a type-aware metadata
// cache, reuse-distance analysis, and harnesses that regenerate every
// table and figure in the paper.
//
// The package is a facade over the internal implementation. Three
// entry points cover most uses:
//
//   - Run simulates one workload/configuration and reports MPKI,
//     traffic, energy, and ED².
//   - The Fig1..Fig7 and Table1/Table2 functions regenerate the
//     paper's experiments.
//   - NewSecureMemory builds the *functional* secure-memory
//     controller — real AES-CTR encryption and HMAC/tree verification
//     over a simulated physical memory — for studying (and testing)
//     the security mechanisms themselves.
//   - Client talks to a mapsd daemon (cmd/mapsd): the same
//     simulations as a service, with a job queue and a
//     content-addressed result cache so identical requests are
//     answered without re-simulating.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package mapsim

import (
	"context"
	"io"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/eva"
	"github.com/maps-sim/mapsim/internal/cache/opt"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/cache/typepred"
	"github.com/maps-sim/mapsim/internal/experiments"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/partition"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/secmem/engine"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
	"github.com/maps-sim/mapsim/internal/workload/spec"
)

// Simulation API.
type (
	// Config describes one simulation run; see the field docs on the
	// underlying type.
	Config = sim.Config
	// Result is a simulation's output.
	Result = sim.Result
	// MetaConfig configures the metadata cache.
	MetaConfig = metacache.Config
	// ContentPolicy selects which metadata kinds may be cached.
	ContentPolicy = metacache.ContentPolicy
	// ReplacementPolicy is the cache replacement interface.
	ReplacementPolicy = cache.Policy
	// PartitionScheme constrains counter/hash placement.
	PartitionScheme = partition.Scheme
	// TraceAccess is one recorded metadata access.
	TraceAccess = trace.Access
	// Trace is a recorded metadata access sequence.
	Trace = trace.Trace
	// Kind classifies metadata blocks.
	Kind = memlayout.Kind
	// Organization selects the counter scheme (PoisonIvy or SGX).
	Organization = memlayout.Organization
	// Generator produces synthetic workload access streams.
	Generator = workload.Generator
	// ReuseAnalyzer measures metadata reuse distances.
	ReuseAnalyzer = reuse.Analyzer
)

// Metadata kinds and counter organizations.
const (
	KindData    = memlayout.KindData
	KindCounter = memlayout.KindCounter
	KindHash    = memlayout.KindHash
	KindTree    = memlayout.KindTree

	PoisonIvy = memlayout.PoisonIvy
	SGX       = memlayout.SGX
)

// Content policies for the metadata cache (Figure 1's comparisons).
const (
	CountersOnly   = metacache.CountersOnly
	CountersHashes = metacache.CountersHashes
	AllTypes       = metacache.AllTypes
)

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// RunContext executes one simulation under a context: cancellation or
// deadline expiry stops the run mid-flight with ctx's error.
func RunContext(ctx context.Context, cfg Config) (*Result, error) { return sim.RunContext(ctx, cfg) }

// SuiteResult aggregates one configuration across benchmarks.
type SuiteResult = sim.SuiteResult

// RunSuite runs one configuration across a benchmark suite in
// parallel (empty list = all benchmarks) and reports per-benchmark
// results plus geometric means.
func RunSuite(base Config, benchmarks []string, parallelism int) (*SuiteResult, error) {
	return sim.RunSuite(base, benchmarks, parallelism)
}

// RunSuiteContext is RunSuite under a context. The fan-out cancels
// itself as soon as any benchmark fails, so the remaining queued runs
// are never simulated just to be discarded.
func RunSuiteContext(ctx context.Context, base Config, benchmarks []string, parallelism int) (*SuiteResult, error) {
	return sim.RunSuiteContext(ctx, base, benchmarks, parallelism)
}

// SeedsResult reports metric spread across workload seeds.
type SeedsResult = sim.SeedsResult

// RunSeeds repeats one configuration across n workload seeds and
// reports the metric spread, quantifying synthetic-workload
// stability.
func RunSeeds(cfg Config, n int) (*SeedsResult, error) { return sim.RunSeeds(cfg, n) }

// Benchmarks lists the available synthetic workloads.
func Benchmarks() []string { return workload.Names() }

// MemoryIntensiveBenchmarks lists the subset the paper focuses on.
func MemoryIntensiveBenchmarks() []string { return workload.MemoryIntensive() }

// NewBenchmark returns a fresh generator for a named workload.
func NewBenchmark(name string) (Generator, error) { return workload.New(name) }

// SyntheticConfig parameterizes a custom workload generator.
type SyntheticConfig = workload.SyntheticConfig

// NewSynthetic builds a workload generator from explicit locality,
// footprint, and write-mix knobs.
func NewSynthetic(cfg SyntheticConfig) (Generator, error) { return workload.NewSynthetic(cfg) }

// WorkloadSpec is a declarative multi-client workload description
// (YAML or JSON); see docs/WORKLOADS.md for the schema.
type WorkloadSpec = spec.Spec

// ParseWorkloadSpec decodes a YAML or JSON workload spec and
// validates it. The result can be set on Config.WorkloadSpec or
// turned into a Generator directly.
func ParseWorkloadSpec(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// NewTraceReplay builds a generator that replays a recorded workload
// trace (see `mapstrace record-workload`) in constant memory, looping
// when the simulation outruns the recording.
func NewTraceReplay(path string) (Generator, error) { return workload.NewTraceReplay(path) }

// Streaming trace I/O: constant-memory readers and writers for
// recorded access streams (the `mapstrace record-workload` format).
type (
	// TraceRecord is one streamed trace record.
	TraceRecord = trace.Record
	// TraceReader decodes a trace stream record by record.
	TraceReader = trace.Reader
	// TraceWriter encodes a trace stream record by record.
	TraceWriter = trace.Writer
	// TraceStreamHeader describes a streamed trace.
	TraceStreamHeader = trace.StreamHeader
)

// NewTraceReader opens a streaming trace reader; it accepts both the
// streaming format and the legacy in-memory trace format.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// NewTraceWriter opens a streaming trace writer (optionally
// gzip-compressed). Close flushes the end-of-stream marker that lets
// readers distinguish clean ends from truncation.
func NewTraceWriter(w io.Writer, h TraceStreamHeader, compress bool) (*TraceWriter, error) {
	return trace.NewWriter(w, h, compress)
}

// NewLRU returns true least-recently-used replacement.
func NewLRU() ReplacementPolicy { return policy.NewLRU() }

// NewPLRU returns tree pseudo-LRU replacement — the paper's baseline
// metadata-cache policy.
func NewPLRU() ReplacementPolicy { return policy.NewPLRU() }

// NewFIFO returns first-in-first-out replacement.
func NewFIFO() ReplacementPolicy { return policy.NewFIFO() }

// NewSRRIP returns static re-reference interval prediction.
func NewSRRIP() ReplacementPolicy { return policy.NewSRRIP() }

// NewBRRIP returns bimodal re-reference interval prediction.
func NewBRRIP() ReplacementPolicy { return policy.NewBRRIP() }

// NewEVA returns the economic-value-added policy the paper evaluates
// in Figure 6.
func NewEVA() ReplacementPolicy { return eva.New(eva.Config{}) }

// NewPerTypeEVA returns EVA with one age histogram per metadata
// class — the fix implied by the paper's diagnosis that bimodal
// metadata reuse defeats EVA's single histogram.
func NewPerTypeEVA() ReplacementPolicy { return eva.NewPerType(eva.Config{}) }

// NewMIN returns Belady's offline-optimal replacement, driven by a
// recorded trace of the run it will replay (Figure 6's MIN bound).
func NewMIN(tr *Trace) ReplacementPolicy {
	return opt.NewMIN(tr)
}

// NewTypePredictor returns the type-aware reuse predictor — the
// replacement direction the paper's conclusions propose (metadata
// type and access type as the prediction signature).
func NewTypePredictor() ReplacementPolicy { return typepred.New() }

// NewRandomPolicy returns seeded random replacement.
func NewRandomPolicy(seed uint64) ReplacementPolicy { return policy.NewRandom(seed) }

// NoPartition returns the unpartitioned metadata cache (Figure 7's
// "none" baseline).
func NoPartition() PartitionScheme { return partition.NewNone() }

// StaticPartition reserves a fixed number of ways for counters and
// leaves the rest to the other metadata classes.
func StaticPartition(ways int) PartitionScheme { return partition.NewStatic(ways) }

// DynamicPartition returns a set-dueling partitioner that picks
// between the two candidate way splits at runtime (Figure 7's
// "dynamic" scheme).
func DynamicPartition(a, b int) PartitionScheme { return partition.NewDynamic(a, b) }

// NewReuseAnalyzer creates a reuse-distance analyzer; wire its Record
// into Config.Tap to profile a run.
func NewReuseAnalyzer(sizeHint int) *ReuseAnalyzer { return reuse.NewAnalyzer(sizeHint) }

// Experiment harnesses: every table and figure in the paper.
type (
	// ExperimentOptions tunes an experiment sweep.
	ExperimentOptions = experiments.Options
	Fig1Result        = experiments.Fig1Result
	Fig2Result        = experiments.Fig2Result
	Fig3Result        = experiments.Fig3Result
	Fig4Result        = experiments.Fig4Result
	Fig5Result        = experiments.Fig5Result
	Fig6Result        = experiments.Fig6Result
	Fig7Result        = experiments.Fig7Result
)

// Fig1 regenerates Figure 1 (MPKI vs metadata cache contents/size).
func Fig1(opt ExperimentOptions) (*Fig1Result, error) { return experiments.Fig1(opt) }

// Fig2 regenerates Figure 2 (normalized ED² across cache budgets).
func Fig2(opt ExperimentOptions) (*Fig2Result, error) { return experiments.Fig2(opt) }

// Fig3 regenerates Figure 3 (reuse-distance CDFs by metadata type).
func Fig3(opt ExperimentOptions) (*Fig3Result, error) { return experiments.Fig3(opt) }

// Fig4 regenerates Figure 4 (bimodal reuse-distance classes).
func Fig4(opt ExperimentOptions) (*Fig4Result, error) { return experiments.Fig4(opt) }

// Fig5 regenerates Figure 5 (reuse CDFs by request type).
func Fig5(opt ExperimentOptions) (*Fig5Result, error) { return experiments.Fig5(opt) }

// Fig6 regenerates Figure 6 (eviction policies incl. MIN/iterMIN).
func Fig6(opt ExperimentOptions) (*Fig6Result, error) { return experiments.Fig6(opt) }

// Fig7 regenerates Figure 7 (cache partitioning schemes).
func Fig7(opt ExperimentOptions) (*Fig7Result, error) { return experiments.Fig7(opt) }

// Table1 renders the simulation configuration (Table I).
func Table1() string { return experiments.Table1() }

// Table2 renders the metadata organization table (Table II), computed
// from the layout math.
func Table2() string { return experiments.Table2().Render() }

// Functional secure memory.
type (
	// SecureMemory is the functional controller: real encryption,
	// hashing, and tree verification over a simulated physical
	// memory.
	SecureMemory = engine.Functional
	// Block is a 64-byte data block.
	Block = engine.Block
	// IntegrityError reports a detected physical attack.
	IntegrityError = engine.IntegrityError
)

// NewSecureMemory builds a functional secure-memory controller
// protecting dataBytes of memory (a multiple of 4 KB, at most
// 256 MB) under the given counter organization and keys.
func NewSecureMemory(org Organization, dataBytes uint64, encKey, macKey []byte) (*SecureMemory, error) {
	layout, err := memlayout.New(org, dataBytes)
	if err != nil {
		return nil, err
	}
	return engine.NewFunctional(layout, encKey, macKey)
}

// CachedSecureMemory is the functional controller with a verified
// on-chip counter cache: hits skip the tree walk, demonstrating (and
// testing) the security argument the paper's metadata cache relies
// on.
type CachedSecureMemory = engine.CachedFunctional

// NewCachedSecureMemory wraps a functional controller with a verified
// counter cache of the given geometry.
func NewCachedSecureMemory(sm *SecureMemory, cacheBytes, ways int) (*CachedSecureMemory, error) {
	return engine.NewCachedFunctional(sm, cacheBytes, ways)
}
