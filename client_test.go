package mapsim_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/server"
	"github.com/maps-sim/mapsim/internal/store"
)

// startDaemon runs the mapsd service in-process, exactly as cmd/mapsd
// wires it, and returns a client pointed at it.
func startDaemon(t *testing.T) (*mapsim.Client, *server.Server) {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8, CacheEntries: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	c := mapsim.NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, srv
}

// The acceptance path: a suite job served end-to-end through the
// client, then the identical request answered from the cache without
// re-running the simulator.
func TestClientSuiteEndToEndWithCache(t *testing.T) {
	c, srv := startDaemon(t)
	ctx := context.Background()
	spec := mapsim.ConfigSpec{Instructions: 30_000}
	benchmarks := []string{"libquantum", "fft"}

	first, err := c.RunSuiteRemote(ctx, spec, benchmarks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.PerBench) != 2 || first.GeomeanIPC <= 0 {
		t.Fatalf("suite result: %+v", first)
	}

	hitsBefore := srv.CacheStats().Hits
	completedBefore := srv.PoolStats().Completed

	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type: mapsim.JobSuite, Config: spec, Benchmarks: benchmarks, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != mapsim.JobDone {
		t.Fatalf("second identical suite POST must be a born-done cache hit: %+v", st)
	}
	if hits := srv.CacheStats().Hits; hits != hitsBefore+1 {
		t.Fatalf("cache hits %d → %d, want +1", hitsBefore, hits)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suite == nil || len(res.Suite.PerBench) != 2 {
		t.Fatalf("cached suite result: %+v", res)
	}
	// The pool completed the cache-hit job without a worker running
	// anything: completed count rose by exactly the one born-done job.
	if got := srv.PoolStats().Completed; got != completedBefore+1 {
		t.Fatalf("pool completed %d → %d, want +1 (no re-simulation)", completedBefore, got)
	}
}

func TestClientRunRemote(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	res, err := c.RunRemote(ctx, mapsim.ConfigSpec{
		Benchmark:    "libquantum",
		Instructions: 50_000,
		Meta:         &mapsim.MetaSpec{Size: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "libquantum" || res.MetaHitRate <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	if _, err := c.Job(ctx, "j-99999999"); err == nil {
		t.Fatal("want 404 error")
	} else {
		var apiErr *mapsim.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
			t.Fatalf("got %v, want APIError 404", err)
		}
	}
	if _, err := c.RunRemote(ctx, mapsim.ConfigSpec{Benchmark: "no-such-bench"}); err == nil {
		t.Fatal("want 400 error for unknown benchmark")
	}
}

func TestClientCancel(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type:   mapsim.JobRun,
		Config: mapsim.ConfigSpec{Benchmark: "libquantum", Instructions: 2_000_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != mapsim.JobCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
}

func TestClientProgress(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	res, err := c.RunRemote(ctx, mapsim.ConfigSpec{Benchmark: "fft", Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 50_000 {
		t.Fatalf("instructions %d, want ≥ 50000", res.Instructions)
	}
	// RunRemote waits for completion, but the job ID is internal to it;
	// resubmit (cache hit) and probe progress on the returned job.
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type: mapsim.JobRun, Config: mapsim.ConfigSpec{Benchmark: "fft", Instructions: 50_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Progress(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != st.ID || p.Fraction != 1 || !p.CacheHit {
		t.Fatalf("cache-hit progress: %+v", p)
	}
	if _, err := c.Progress(ctx, "j-99999999"); err == nil {
		t.Fatal("want 404 error for unknown job progress")
	}
}

func TestClientBenchmarks(t *testing.T) {
	c, _ := startDaemon(t)
	names, err := c.RemoteBenchmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no benchmarks listed")
	}
}

// An already-cancelled context must fail fast from every client call —
// no HTTP attempt, no retry sleeps, just the context error.
func TestClientCanceledContext(t *testing.T) {
	c, _ := startDaemon(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.Submit(ctx, mapsim.JobRequest{Type: mapsim.JobRun,
		Config: mapsim.ConfigSpec{Benchmark: "libquantum", Instructions: 50_000}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Submit: %v, want context.Canceled", err)
	}
	if _, err := c.Wait(ctx, "j-00000001"); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait: %v, want context.Canceled", err)
	}
	if _, err := c.Progress(ctx, "j-00000001"); !errors.Is(err, context.Canceled) {
		t.Errorf("Progress: %v, want context.Canceled", err)
	}
	if got := c.Retries(); got != 0 {
		t.Errorf("retries %d, want 0 (context errors are never retried)", got)
	}
}

// Transient statuses are retried until the daemon recovers;
// non-transient errors are returned on the first attempt.
func TestClientRetriesTransientStatus(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"id":"j-00000001","state":"done"}`)
	}))
	defer stub.Close()

	c := mapsim.NewClient(stub.URL)
	c.RetryBase = time.Millisecond
	st, err := c.Job(context.Background(), "j-00000001")
	if err != nil {
		t.Fatalf("Job after transient 503s: %v", err)
	}
	if st.State != mapsim.JobDone {
		t.Errorf("state %s, want done", st.State)
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("retries %d, want 2", got)
	}

	// A 404 is not transient: exactly one attempt, no retries.
	calls.Store(100)
	c2 := mapsim.NewClient(stub.URL)
	c2.RetryBase = time.Millisecond
	stub.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	})
	if _, err := c2.Job(context.Background(), "j-00000002"); err == nil {
		t.Fatal("want 404 error")
	}
	if got := c2.Retries(); got != 0 {
		t.Errorf("retries %d, want 0 for 404", got)
	}
}

// The idempotency acceptance test: a flaky proxy forwards the client's
// first POST to the daemon — so the job lands — but reports 503, making
// the client retry a submission that already succeeded. Server-side
// dedup (canonical config hash) must coalesce the retry onto the
// existing job: one simulation runs, not two.
func TestClientRetryIdempotentSubmit(t *testing.T) {
	c, srv := startDaemon(t)
	daemonURL, err := url.Parse(c.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	passthrough := httputil.NewSingleHostReverseProxy(daemonURL)

	var dropped atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && !dropped.Swap(true) {
			// Deliver the submission, then pretend the response was lost.
			body, _ := io.ReadAll(r.Body)
			resp, err := http.Post(c.BaseURL+r.URL.Path, r.Header.Get("Content-Type"), bytes.NewReader(body))
			if err != nil {
				t.Errorf("proxy forward: %v", err)
			} else {
				resp.Body.Close()
			}
			http.Error(w, `{"error":"response lost by chaos proxy"}`, http.StatusServiceUnavailable)
			return
		}
		passthrough.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	flaky := mapsim.NewClient(proxy.URL)
	flaky.RetryBase = time.Millisecond
	flaky.PollInterval = 5 * time.Millisecond

	ctx := context.Background()
	st, err := flaky.Submit(ctx, mapsim.JobRequest{
		Type: mapsim.JobRun,
		// Long-running, so the first submission is still in flight when
		// the retry arrives and singleflight can coalesce them.
		Config: mapsim.ConfigSpec{Benchmark: "libquantum", Instructions: 2_000_000_000},
	})
	if err != nil {
		t.Fatalf("Submit through flaky proxy: %v", err)
	}
	defer flaky.Cancel(ctx, st.ID)

	if got := flaky.Retries(); got != 1 {
		t.Errorf("client retries %d, want 1", got)
	}
	if !st.Deduped {
		t.Error("retried submission not marked deduped")
	}
	if got := srv.Deduped(); got != 1 {
		t.Errorf("server dedup count %d, want 1 (retry coalesced)", got)
	}
	if got := srv.PoolStats().Submitted; got != 1 {
		t.Errorf("pool submissions %d, want 1 — the retry must not start a second simulation", got)
	}
}

// The sweep path end to end: submit, stream progress, fetch the
// aggregated result, then dedupe the identical sweep from the cache.
func TestClientSweepEndToEnd(t *testing.T) {
	c, _ := startDaemon(t)
	req := mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{Instructions: 20_000, Speculation: true},
		Axes: mapsim.SweepAxes{
			Benchmarks: []string{"fft"},
			Meta:       mapsim.SweepIntAxis{Points: []mapsim.ByteSize{16 << 10, 64 << 10}},
			Contents:   []string{"counters", "all"},
		},
	}

	var updates atomic.Int32
	res, err := c.RunSweepRemote(context.Background(), req, func(st mapsim.SweepStatus) {
		updates.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 || res.Done != 4 || len(res.Points) != 4 {
		t.Fatalf("sweep result shape: %+v", res)
	}
	if updates.Load() == 0 {
		t.Fatal("no progress updates streamed")
	}
	for i, p := range res.Points {
		if p.Result == nil {
			t.Fatalf("point %d has no result", i)
		}
	}

	// The identical sweep again: every point must come from the cache.
	res2, err := c.RunSweepRemote(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Deduped == 0 {
		t.Fatalf("repeat sweep deduped %d points, want > 0", res2.Deduped)
	}
}

func TestClientSweepBadSpec(t *testing.T) {
	c, _ := startDaemon(t)
	_, err := c.Sweep(context.Background(), mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{Instructions: 1000},
		Axes: mapsim.SweepAxes{Benchmarks: []string{"quake4"}},
	})
	if err == nil {
		t.Fatal("Sweep accepted an unknown benchmark")
	}
}

// TestClientStoreFetch drives the peer-fill verb through the real
// client: a computed job's envelope comes back decodable, an unknown
// key is a 404 *APIError (not retried), a hostile key a 400.
func TestClientStoreFetch(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Config: mapsim.ConfigSpec{Benchmark: "libquantum", Instructions: 30_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	raw, err := c.StoreFetch(ctx, st.Key)
	if err != nil {
		t.Fatal(err)
	}
	env, err := store.Decode(raw)
	if err != nil {
		t.Fatalf("fetched envelope does not decode: %v", err)
	}
	if env.Key != st.Key {
		t.Fatalf("envelope key %s, want %s", env.Key, st.Key)
	}
	if _, err := env.Value(); err != nil {
		t.Fatalf("envelope payload does not decode: %v", err)
	}

	var apiErr *mapsim.APIError
	unknown := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, err := c.StoreFetch(ctx, unknown); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %v, want 404 APIError", err)
	}
	if _, err := c.StoreFetch(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: %v, want 400 APIError", err)
	}
}

// TestSweepProgressReconnects drops the NDJSON watch connection hard
// after its first status line; the client must reconnect on its own,
// keep the observed done-counts monotonic across the break, and still
// deliver the terminal status — the crash-safe watch contract.
func TestSweepProgressReconnects(t *testing.T) {
	c, _ := startDaemon(t)
	daemonURL, err := url.Parse(c.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	passthrough := httputil.NewSingleHostReverseProxy(daemonURL)

	var dropped atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("watch") == "1" && !dropped.Swap(true) {
			// Relay exactly one stream line, then kill the connection
			// mid-stream — the shape of a daemon restart.
			resp, err := http.Get(c.BaseURL + r.URL.Path + "?watch=1")
			if err != nil {
				t.Errorf("proxy watch: %v", err)
				panic(http.ErrAbortHandler)
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", "application/x-ndjson")
			line := make([]byte, 1)
			for {
				if _, err := resp.Body.Read(line); err != nil {
					break
				}
				w.Write(line)
				if line[0] == '\n' {
					break
				}
			}
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		passthrough.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	flaky := mapsim.NewClient(proxy.URL)
	flaky.RetryBase = time.Millisecond
	flaky.MaxRetries = 10
	flaky.PollInterval = 5 * time.Millisecond

	ctx := context.Background()
	st, err := flaky.Sweep(ctx, mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{Instructions: 5_000_000, Speculation: true},
		Axes: mapsim.SweepAxes{
			Benchmarks: []string{"fft"},
			Meta:       mapsim.SweepIntAxis{Points: []mapsim.ByteSize{16 << 10, 32 << 10, 64 << 10, 128 << 10}},
		},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}

	lastDone := -1
	res, err := flaky.ResumeSweep(ctx, st.ID, func(cur mapsim.SweepStatus) {
		if cur.Done < lastDone {
			t.Errorf("Done went backwards across reconnect: %d then %d", lastDone, cur.Done)
		}
		lastDone = cur.Done
	})
	if err != nil {
		t.Fatalf("ResumeSweep through dropping proxy: %v", err)
	}
	if len(res.Points) != st.Total || lastDone != st.Total {
		t.Fatalf("result %d points, last Done %d, want %d", len(res.Points), lastDone, st.Total)
	}
	if !dropped.Load() {
		t.Fatal("proxy never dropped the watch stream")
	}
	if flaky.Retries() == 0 {
		t.Error("client reports zero retries after a dropped watch stream")
	}
}
