package mapsim_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/server"
)

// startDaemon runs the mapsd service in-process, exactly as cmd/mapsd
// wires it, and returns a client pointed at it.
func startDaemon(t *testing.T) (*mapsim.Client, *server.Server) {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8, CacheEntries: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	c := mapsim.NewClient(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return c, srv
}

// The acceptance path: a suite job served end-to-end through the
// client, then the identical request answered from the cache without
// re-running the simulator.
func TestClientSuiteEndToEndWithCache(t *testing.T) {
	c, srv := startDaemon(t)
	ctx := context.Background()
	spec := mapsim.ConfigSpec{Instructions: 30_000}
	benchmarks := []string{"libquantum", "fft"}

	first, err := c.RunSuiteRemote(ctx, spec, benchmarks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.PerBench) != 2 || first.GeomeanIPC <= 0 {
		t.Fatalf("suite result: %+v", first)
	}

	hitsBefore := srv.CacheStats().Hits
	completedBefore := srv.PoolStats().Completed

	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type: mapsim.JobSuite, Config: spec, Benchmarks: benchmarks, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != mapsim.JobDone {
		t.Fatalf("second identical suite POST must be a born-done cache hit: %+v", st)
	}
	if hits := srv.CacheStats().Hits; hits != hitsBefore+1 {
		t.Fatalf("cache hits %d → %d, want +1", hitsBefore, hits)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suite == nil || len(res.Suite.PerBench) != 2 {
		t.Fatalf("cached suite result: %+v", res)
	}
	// The pool completed the cache-hit job without a worker running
	// anything: completed count rose by exactly the one born-done job.
	if got := srv.PoolStats().Completed; got != completedBefore+1 {
		t.Fatalf("pool completed %d → %d, want +1 (no re-simulation)", completedBefore, got)
	}
}

func TestClientRunRemote(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	res, err := c.RunRemote(ctx, mapsim.ConfigSpec{
		Benchmark:    "libquantum",
		Instructions: 50_000,
		Meta:         &mapsim.MetaSpec{Size: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "libquantum" || res.MetaHitRate <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	if _, err := c.Job(ctx, "j-99999999"); err == nil {
		t.Fatal("want 404 error")
	} else {
		var apiErr *mapsim.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
			t.Fatalf("got %v, want APIError 404", err)
		}
	}
	if _, err := c.RunRemote(ctx, mapsim.ConfigSpec{Benchmark: "no-such-bench"}); err == nil {
		t.Fatal("want 400 error for unknown benchmark")
	}
}

func TestClientCancel(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type:   mapsim.JobRun,
		Config: mapsim.ConfigSpec{Benchmark: "libquantum", Instructions: 2_000_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != mapsim.JobCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
}

func TestClientProgress(t *testing.T) {
	c, _ := startDaemon(t)
	ctx := context.Background()
	res, err := c.RunRemote(ctx, mapsim.ConfigSpec{Benchmark: "fft", Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 50_000 {
		t.Fatalf("instructions %d, want ≥ 50000", res.Instructions)
	}
	// RunRemote waits for completion, but the job ID is internal to it;
	// resubmit (cache hit) and probe progress on the returned job.
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type: mapsim.JobRun, Config: mapsim.ConfigSpec{Benchmark: "fft", Instructions: 50_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Progress(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != st.ID || p.Fraction != 1 || !p.CacheHit {
		t.Fatalf("cache-hit progress: %+v", p)
	}
	if _, err := c.Progress(ctx, "j-99999999"); err == nil {
		t.Fatal("want 404 error for unknown job progress")
	}
}

func TestClientBenchmarks(t *testing.T) {
	c, _ := startDaemon(t)
	names, err := c.RemoteBenchmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no benchmarks listed")
	}
}
