// Reuseprofile measures metadata reuse distances for one benchmark —
// the analysis behind the paper's Figures 3 and 4 — by tapping every
// metadata request the memory encryption engine makes and feeding it
// to the stack-distance analyzer.
package main

import (
	"flag"
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

func main() {
	bench := flag.String("bench", "libquantum", "benchmark to profile")
	instructions := flag.Uint64("instructions", 1_500_000, "instructions to simulate")
	flag.Parse()

	an := mapsim.NewReuseAnalyzer(int(*instructions / 2))
	_, err := mapsim.Run(mapsim.Config{
		Benchmark:    *bench,
		Instructions: *instructions,
		Secure:       true,
		Speculation:  true,
		// No metadata cache: reuse distances reflect raw demand, as
		// in the paper's Figure 3 methodology.
		Tap: func(a mapsim.TraceAccess) {
			an.Record(a.Addr, mapsim.Kind(a.Class), a.Write)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	thresholds := []uint64{4 << 10, 32 << 10, 288 << 10, 1 << 20, 16 << 20}
	kinds := []mapsim.Kind{mapsim.KindCounter, mapsim.KindHash, mapsim.KindTree}

	fmt.Printf("metadata reuse-distance CDF for %s (2MB LLC, no metadata cache)\n\n", *bench)
	fmt.Printf("%-8s %10s", "type", "accesses")
	for _, th := range thresholds {
		if th >= 1<<20 {
			fmt.Printf("  <=%3dMB", th>>20)
		} else {
			fmt.Printf("  <=%3dKB", th>>10)
		}
	}
	fmt.Println("   bimodality")
	for _, k := range kinds {
		cdf := an.CDF(k, thresholds)
		fmt.Printf("%-8s %10d", k, an.Accesses(k))
		for _, v := range cdf {
			fmt.Printf("  %7.2f", v)
		}
		fmt.Printf("   %10.2f\n", an.BimodalityScore(k))
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - tree rows rise fastest: one tree block covers the most data,")
	fmt.Println("    so a tiny cache already captures tree reuse")
	fmt.Println("  - hash rows rise slowest: hashes are the hardest type to cache")
	fmt.Println("  - bimodality near 1.0 = reuse is either very short or very long,")
	fmt.Println("    the paper's argument against mid-sized metadata caches")
}
