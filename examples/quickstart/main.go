// Quickstart: simulate one benchmark on a secure-memory system with a
// 64 KB metadata cache and print the headline numbers next to an
// insecure baseline — the minimal end-to-end use of the mapsim API.
package main

import (
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

func main() {
	const bench = "canneal"
	const instructions = 1_000_000

	baseline, err := mapsim.Run(mapsim.Config{
		Benchmark:    bench,
		Instructions: instructions,
	})
	if err != nil {
		log.Fatal(err)
	}

	secure, err := mapsim.Run(mapsim.Config{
		Benchmark:    bench,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true, // PoisonIvy-style: hide verification latency
		Meta: &mapsim.MetaConfig{
			Size:    64 << 10,
			Ways:    8,
			Content: mapsim.AllTypes,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%d instructions)\n\n", bench, instructions)
	fmt.Printf("%-24s %14s %14s\n", "", "insecure", "secure+64KB$")
	fmt.Printf("%-24s %14d %14d\n", "cycles", baseline.Cycles, secure.Cycles)
	fmt.Printf("%-24s %14.2f %14.2f\n", "LLC MPKI", baseline.LLCMPKI, secure.LLCMPKI)
	fmt.Printf("%-24s %14.2f %14.2f\n", "metadata MPKI", baseline.MetaMPKI, secure.MetaMPKI)
	fmt.Printf("%-24s %14.3f %14.3f\n", "energy (mJ)", baseline.EnergyPJ/1e9, secure.EnergyPJ/1e9)
	fmt.Printf("%-24s %14.2f %14.2f\n", "ED^2 (norm.)", 1.0, secure.ED2/baseline.ED2)

	fmt.Println("\nmetadata cache behaviour by type:")
	for _, kind := range []mapsim.Kind{mapsim.KindCounter, mapsim.KindHash, mapsim.KindTree} {
		s := secure.Meta[kind]
		fmt.Printf("  %-8s accesses=%-8d misses=%-7d MPKI=%.2f\n",
			kind, s.Accesses, s.Misses, s.MPKI)
	}

	fmt.Printf("\nslowdown from secure memory: %.2fx (speculation on)\n",
		float64(secure.Cycles)/float64(baseline.Cycles))
}
