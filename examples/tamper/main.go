// Tamper demonstrates the functional secure-memory controller: data
// is really encrypted with counter-derived one-time pads and really
// verified against HMACs and the on-chip Bonsai Merkle Tree root, so
// every class of physical attack the paper's threat model lists —
// snooping, tampering, and replay — is either useless or detected.
package main

import (
	"bytes"
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

func main() {
	sm, err := mapsim.NewSecureMemory(
		mapsim.PoisonIvy,
		16<<20,                         // 16 MB protected
		bytes.Repeat([]byte{0x42}, 16), // AES pad key
		[]byte("hmac key"),
	)
	if err != nil {
		log.Fatal(err)
	}

	secret := mapsim.Block{}
	copy(secret[:], "attack at dawn; launch code 0000")
	const addr = 0x2000

	if err := sm.Store(addr, &secret); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stored one block of secret data at", fmt.Sprintf("%#x", addr))

	// 1. Confidentiality: the bus/DRAM never see plaintext.
	raw := sm.Memory().Snapshot(addr)
	fmt.Printf("\n[1] snooping the memory bus\n    plaintext:  %q\n    ciphertext: %x...\n",
		secret[:32], raw[:16])
	if bytes.Contains(raw[:], secret[:16]) {
		log.Fatal("plaintext leaked to memory!")
	}
	fmt.Println("    -> attacker sees only ciphertext")

	// 2. Integrity: flipping a data bit is detected by the data HMAC.
	sm.Memory().FlipBit(addr, 7)
	var out mapsim.Block
	err = sm.Load(addr, &out)
	fmt.Printf("\n[2] flipping one data bit\n    load result: %v\n", err)
	if err == nil {
		log.Fatal("tampering was NOT detected")
	}
	sm.Memory().FlipBit(addr, 7) // undo

	// 3. Counter tampering: detected by the integrity tree.
	cAddr := sm.Layout().CounterAddr(addr)
	sm.Memory().FlipBit(cAddr, 0)
	err = sm.Load(addr, &out)
	fmt.Printf("\n[3] tampering with the encryption counter\n    load result: %v\n", err)
	if err == nil {
		log.Fatal("counter tampering was NOT detected")
	}
	sm.Memory().FlipBit(cAddr, 0)

	// 4. Replay: restore a complete stale snapshot (data + hash +
	// counter). Only the on-chip root can catch this.
	dataSnap := sm.Memory().Snapshot(addr)
	hashSnap := sm.Memory().Snapshot(sm.Layout().HashAddr(addr))
	ctrSnap := sm.Memory().Snapshot(cAddr)

	update := mapsim.Block{}
	copy(update[:], "attack cancelled; stand down now")
	if err := sm.Store(addr, &update); err != nil {
		log.Fatal(err)
	}

	// Keep the genuine current state so it can be reinstated after
	// the attack (a real system would fault; the simulator lets us
	// undo the attacker's writes).
	goodData := sm.Memory().Snapshot(addr)
	goodHash := sm.Memory().Snapshot(sm.Layout().HashAddr(addr))
	goodCtr := sm.Memory().Snapshot(cAddr)

	sm.Memory().Restore(addr, dataSnap)
	sm.Memory().Restore(sm.Layout().HashAddr(addr), hashSnap)
	sm.Memory().Restore(cAddr, ctrSnap)
	err = sm.Load(addr, &out)
	fmt.Printf("\n[4] replaying a stale (data, hash, counter) snapshot\n    load result: %v\n", err)
	if err == nil {
		log.Fatal("replay was NOT detected")
	}

	// Undo the attack: clean loads still work.
	sm.Memory().Restore(addr, goodData)
	sm.Memory().Restore(sm.Layout().HashAddr(addr), goodHash)
	sm.Memory().Restore(cAddr, goodCtr)
	if err := sm.Load(addr, &out); err != nil || out != update {
		log.Fatalf("clean load failed: %v", err)
	}
	fmt.Println("\nall four attacks defeated; clean accesses unaffected")
}
