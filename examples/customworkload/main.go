// Customworkload shows how to study metadata caching for an access
// pattern of your own: build a generator from explicit locality /
// footprint / write-mix knobs with NewSynthetic, then sweep the
// spatial-locality axis and watch how each metadata type's
// cacheability responds — the core mechanism behind every figure in
// the paper.
package main

import (
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

func main() {
	fmt.Println("metadata MPKI vs spatial locality (64KB metadata cache, 32MB footprint)")
	fmt.Println()
	fmt.Printf("%-18s %12s %12s %12s %12s\n",
		"sequential run", "counter", "hash", "tree", "total MPKI")

	// Sweep spatial locality: from pure pointer chasing (run 1) to
	// long streams (run 64 words = 512 B).
	for _, run := range []int{1, 4, 16, 64} {
		gen, err := mapsim.NewSynthetic(mapsim.SyntheticConfig{
			Name:           fmt.Sprintf("custom-run%d", run),
			FootprintBytes: 32 << 20,
			MeanGap:        3,
			WriteFraction:  0.2,
			SequentialRun:  run,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := mapsim.Run(mapsim.Config{
			Workload:     gen,
			Instructions: 1_000_000,
			Secure:       true,
			Speculation:  true,
			Meta:         &mapsim.MetaConfig{Size: 64 << 10, Ways: 8},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.2f %12.2f %12.2f %12.2f\n",
			fmt.Sprintf("%d words (%dB)", run, run*8),
			res.Meta[mapsim.KindCounter].MPKI,
			res.Meta[mapsim.KindHash].MPKI,
			res.Meta[mapsim.KindTree].MPKI,
			res.MetaMPKI)
	}

	fmt.Println()
	fmt.Println("spatial locality in the data stream becomes temporal locality for")
	fmt.Println("metadata (one counter block covers a 4KB page, one hash block 512B),")
	fmt.Println("so longer runs collapse metadata misses — the paper's §IV-C insight.")
}
