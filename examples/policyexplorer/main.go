// Policyexplorer compares metadata-cache replacement policies and
// sizes on one benchmark — the paper's Figure 6 territory, exposed as
// an interactive-style exploration of the public API. It also shows
// recording a trace with Config.Tap and handing it to Belady's MIN as
// (stale-able) future knowledge.
package main

import (
	"flag"
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

func main() {
	bench := flag.String("bench", "fft", "benchmark to explore")
	instructions := flag.Uint64("instructions", 1_000_000, "instructions per run")
	flag.Parse()

	sizes := []int{16 << 10, 64 << 10, 256 << 10}
	policies := map[string]func() mapsim.ReplacementPolicy{
		"plru":  mapsim.NewPLRU,
		"lru":   mapsim.NewLRU,
		"fifo":  mapsim.NewFIFO,
		"srrip": mapsim.NewSRRIP,
		"eva":   mapsim.NewEVA,
	}
	order := []string{"plru", "lru", "fifo", "srrip", "eva", "min"}

	run := func(size int, p mapsim.ReplacementPolicy, tap func(mapsim.TraceAccess)) *mapsim.Result {
		r, err := mapsim.Run(mapsim.Config{
			Benchmark:    *bench,
			Instructions: *instructions,
			Secure:       true,
			Speculation:  true,
			Meta:         &mapsim.MetaConfig{Size: size, Ways: 8, Policy: p},
			Tap:          tap,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Printf("metadata MPKI for %s across policies and sizes:\n\n", *bench)
	fmt.Printf("%-8s", "policy")
	for _, s := range sizes {
		fmt.Printf("%10dKB", s>>10)
	}
	fmt.Println()

	for _, name := range order {
		fmt.Printf("%-8s", name)
		for _, size := range sizes {
			var mpki float64
			if name == "min" {
				// Record a true-LRU trace, then replay with MIN using
				// it as future knowledge — knowledge that goes stale
				// as decisions deviate (the paper's §V-B).
				tr := &mapsim.Trace{}
				run(size, mapsim.NewLRU(), tr.Append)
				mpki = run(size, mapsim.NewMIN(tr), nil).MetaMPKI
			} else {
				mpki = run(size, policies[name](), nil).MetaMPKI
			}
			fmt.Printf("%12.2f", mpki)
		}
		fmt.Println()
	}
	fmt.Println("\nnote how MIN — 'optimal' for ordinary caches — is often no better")
	fmt.Println("than pseudo-LRU here: metadata miss costs are non-uniform and the")
	fmt.Println("access trace itself depends on what the cache holds.")
}
