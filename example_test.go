package mapsim_test

import (
	"bytes"
	"fmt"
	"log"

	mapsim "github.com/maps-sim/mapsim"
)

// Simulate one benchmark on a secure-memory system with a metadata
// cache and inspect the per-type behaviour.
func Example() {
	res, err := mapsim.Run(mapsim.Config{
		Benchmark:    "libquantum",
		Instructions: 200_000,
		Secure:       true,
		Speculation:  true,
		Meta:         &mapsim.MetaConfig{Size: 64 << 10, Ways: 8, Content: mapsim.AllTypes},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter accesses > 0: %v\n", res.Meta[mapsim.KindCounter].Accesses > 0)
	fmt.Printf("metadata cache effective: %v\n", res.MetaHitRate > 0.5)
	// Output:
	// counter accesses > 0: true
	// metadata cache effective: true
}

// The functional controller provides real confidentiality and
// integrity: tampering with the simulated DRAM is detected.
func ExampleNewSecureMemory() {
	sm, err := mapsim.NewSecureMemory(mapsim.PoisonIvy, 1<<20,
		bytes.Repeat([]byte{1}, 16), []byte("mac key"))
	if err != nil {
		log.Fatal(err)
	}
	var secret, out mapsim.Block
	copy(secret[:], "launch codes")
	if err := sm.Store(0, &secret); err != nil {
		log.Fatal(err)
	}
	if err := sm.Load(0, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %v\n", out == secret)

	sm.Memory().FlipBit(0, 3) // physical attack
	err = sm.Load(0, &out)
	fmt.Printf("tamper detected: %v\n", err != nil)
	// Output:
	// round trip ok: true
	// tamper detected: true
}

// Reuse-distance profiling hooks into any simulation through
// Config.Tap.
func ExampleNewReuseAnalyzer() {
	an := mapsim.NewReuseAnalyzer(0)
	_, err := mapsim.Run(mapsim.Config{
		Benchmark:    "libquantum",
		Instructions: 100_000,
		Secure:       true,
		Tap: func(a mapsim.TraceAccess) {
			an.Record(a.Addr, mapsim.Kind(a.Class), a.Write)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Tree nodes cover the most data, so their reuse distances are
	// the shortest of the three metadata types.
	tree := an.CDF(mapsim.KindTree, []uint64{4 << 10})
	hash := an.CDF(mapsim.KindHash, []uint64{4 << 10})
	fmt.Printf("tree reuse tighter than hash reuse: %v\n", tree[0] >= hash[0])
	// Output:
	// tree reuse tighter than hash reuse: true
}

// Custom workloads expose the locality knobs the built-in benchmarks
// are tuned with.
func ExampleNewSynthetic() {
	gen, err := mapsim.NewSynthetic(mapsim.SyntheticConfig{
		Name:           "mine",
		FootprintBytes: 8 << 20,
		MeanGap:        3,
		WriteFraction:  0.2,
		SequentialRun:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mapsim.Run(mapsim.Config{
		Workload:     gen,
		Instructions: 100_000,
		Secure:       true,
		Meta:         &mapsim.MetaConfig{Size: 64 << 10, Ways: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated workload %q: %v\n", res.Benchmark, res.MetaMPKI >= 0)
	// Output:
	// simulated workload "mine": true
}

// Recording a metadata trace and handing it to Belady's MIN
// reproduces the paper's §V-B methodology.
func ExampleNewMIN() {
	tr := &mapsim.Trace{}
	_, err := mapsim.Run(mapsim.Config{
		Benchmark:    "fft",
		Instructions: 100_000,
		Secure:       true,
		Meta:         &mapsim.MetaConfig{Size: 16 << 10, Ways: 8},
		Tap:          tr.Append,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mapsim.Run(mapsim.Config{
		Benchmark:    "fft",
		Instructions: 100_000,
		Secure:       true,
		Meta:         &mapsim.MetaConfig{Size: 16 << 10, Ways: 8, Policy: mapsim.NewMIN(tr)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIN replay ran: %v\n", res.MetaMPKI > 0)
	// Output:
	// MIN replay ran: true
}
