package mapsim

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/maps-sim/mapsim/internal/fleet"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/server"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// Ready probes the daemon's GET /readyz with a single attempt — no
// retries, because a health probe that retried through failures would
// defeat its point. It returns nil when the daemon is accepting work,
// an *APIError when it answered unready (draining, saturated), and a
// transport error when it is unreachable.
func (c *Client) Ready(ctx context.Context) error {
	return c.once(ctx, http.MethodGet, "/readyz", nil, nil)
}

// WorkerRunner adapts a remote mapsd daemon to the fleet's Runner
// interface: a sweep coordinator dispatches grid points to it as run
// jobs over the retrying Client, probes health via /readyz, and
// relies on its error classification — infrastructure failures come
// back marked as worker failures (re-issue the point elsewhere),
// simulation errors come back plain (fail the sweep fast).
//
// Every dispatched point is round-trip verified before it leaves:
// the wire-encoded config must land on exactly the point's canonical
// content address, so a remote result is interchangeable — same store
// key, byte-identical payload — with a local one. A point the wire
// cannot express faithfully is rejected rather than approximated.
type WorkerRunner struct {
	client *Client
	name   string
}

// NewWorkerRunner wraps a client as a fleet worker named after its
// base URL.
func NewWorkerRunner(c *Client) *WorkerRunner {
	return &WorkerRunner{client: c, name: c.BaseURL}
}

// Name identifies the worker (its daemon base URL).
func (w *WorkerRunner) Name() string { return w.name }

// Healthy probes the daemon's /readyz, bounding the probe at two
// seconds so an unreachable worker cannot stall dispatch.
func (w *WorkerRunner) Healthy(ctx context.Context) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	return w.client.Ready(ctx) == nil
}

// Run dispatches the point to the daemon as a run job and waits for
// its result.
func (w *WorkerRunner) Run(ctx context.Context, p sweep.Point, timeout time.Duration, noCache bool) (*Result, error) {
	pol, part := sweep.CacheNames(p)
	spec, err := server.SpecFromSim(p.Config, pol, part)
	if err != nil {
		return nil, fmt.Errorf("point %s: %w", p, err) // inexpressible — fail fast
	}
	// Round-trip verification: decoding our own wire spec must yield
	// the point's exact content address, or the remote would compute
	// (and store) something subtly different.
	localKey, err := results.PointKeyFor(p.Config, pol, part)
	if err != nil {
		return nil, fmt.Errorf("point %s: %w", p, err)
	}
	rtCfg, err := spec.ToSim()
	if err != nil {
		return nil, fmt.Errorf("point %s: wire round-trip: %w", p, err)
	}
	rtKey, err := results.PointKeyFor(rtCfg, pol, part)
	if err != nil {
		return nil, fmt.Errorf("point %s: wire round-trip: %w", p, err)
	}
	if rtKey != localKey {
		return nil, fmt.Errorf("point %s: wire round-trip changed the content address (%s != %s)", p, rtKey, localKey)
	}

	req := JobRequest{
		Type:       JobRun,
		Config:     spec,
		TimeoutSec: timeout.Seconds(),
		NoCache:    noCache,
	}
	st, err := w.client.Submit(ctx, req)
	if err != nil {
		return nil, w.classify(err)
	}
	if !st.State.Terminal() {
		if st, err = w.client.Wait(ctx, st.ID); err != nil {
			return nil, w.classify(err)
		}
	}
	switch st.State {
	case JobDone:
	case JobCanceled:
		// The worker killed the job (shutdown, drain) — not a
		// simulation verdict; run it elsewhere.
		return nil, fleet.WorkerFailure(fmt.Errorf("worker %s canceled job %s: %s", w.name, st.ID, st.Error))
	default:
		return nil, fmt.Errorf("job %s on %s failed: %s", st.ID, w.name, st.Error)
	}
	res, err := w.client.Result(ctx, st.ID)
	if err != nil {
		return nil, w.classify(err)
	}
	if res.Run == nil {
		return nil, fleet.WorkerFailure(fmt.Errorf("worker %s: job %s returned no run result", w.name, st.ID))
	}
	return res.Run, nil
}

// classify sorts a client error into the coordinator's two buckets:
// worker failures (transport errors, 429 shed, 5xx — re-issue
// elsewhere) versus caller/simulation errors (4xx — fail fast).
// Context errors pass through untouched so cancellation is never
// mistaken for a sick worker.
func (w *WorkerRunner) classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.StatusCode == http.StatusTooManyRequests || ae.StatusCode >= 500 {
			return fleet.WorkerFailure(fmt.Errorf("worker %s: %w", w.name, err))
		}
		return fmt.Errorf("worker %s: %w", w.name, err)
	}
	// Transport-level failure — connection refused, reset, DNS: the
	// worker is unreachable, not wrong.
	return fleet.WorkerFailure(fmt.Errorf("worker %s: %w", w.name, err))
}

// FleetWorker bundles a WorkerRunner into the fleet.Worker shape the
// server's Config.Fleet wants, bounding the daemon to maxInflight
// concurrent points (<= 0 means 1).
func FleetWorker(c *Client, maxInflight int) fleet.Worker {
	return fleet.Worker{Runner: NewWorkerRunner(c), MaxInflight: maxInflight}
}
